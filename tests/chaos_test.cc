// Fleet chaos campaigns: scheduled outage windows (agent / correlated host /
// rolling upgrade), the strict PERFSIGHT_FAULTS campaign grammar, the
// rolling-upgrade differential gate (pooled scatter byte-identical to the
// sequential oracle while agents go down and come back), reconnect-aware
// hello diffing (departed / added element sets, epoch skips), controller
// quorum reads over mirrored elements, adaptive retry budgets, and a churn
// variant for TSan.  ChaosMatrixTest is the CI chaos-matrix entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/faults.h"
#include "perfsight/remote_agent.h"
#include "perfsight/transport.h"

namespace perfsight {
namespace {

class FakeSource : public StatsSource {
 public:
  FakeSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs;
    return r;
  }

  std::vector<Attr> attrs;

 private:
  ElementId id_;
  ChannelKind kind_;
};

std::string fmt(const Result<Controller::QualifiedRecord>& r) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  return "OK " + to_wire(r.value().record) + " q=" +
         to_string(r.value().quality) + "\n";
}

// Outage forcing, not breaker behaviour, is under test in most of this file:
// a threshold no campaign can reach keeps the per-kind breakers closed so
// repeated sweeps over the same agents stay comparable.
CircuitBreakerConfig no_breakers() {
  CircuitBreakerConfig cb;
  cb.failure_threshold = 1u << 30;
  return cb;
}

size_t count_occurrences(const std::string& hay, const std::string& needle) {
  size_t n = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

// --- campaign schedules ------------------------------------------------------

TEST(CampaignPlanTest, OutageWindowIsHalfOpenAndDeterministic) {
  FaultPlan plan(7);
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.has_campaign());
  plan.schedule_outage("a0", SimTime::millis(100), SimTime::millis(200));
  EXPECT_TRUE(plan.enabled());  // a campaign alone arms the fault path
  EXPECT_TRUE(plan.has_campaign());

  EXPECT_FALSE(plan.agent_down("a0", SimTime::millis(99)));
  EXPECT_TRUE(plan.agent_down("a0", SimTime::millis(100)));  // closed start
  EXPECT_TRUE(plan.agent_down("a0", SimTime::millis(199)));
  EXPECT_FALSE(plan.agent_down("a0", SimTime::millis(200)));  // open end
  EXPECT_FALSE(plan.agent_down("other", SimTime::millis(150)));

  EXPECT_FALSE(plan.campaign_active(SimTime::millis(50)));
  EXPECT_TRUE(plan.campaign_active(SimTime::millis(150)));
  EXPECT_FALSE(plan.campaign_active(SimTime::millis(250)));
}

TEST(CampaignPlanTest, HostOutageTakesDownEveryTaggedAgentTogether) {
  FaultPlan plan(7);
  plan.set_host("a0", "rack1");
  plan.set_host("a1", "rack1");
  plan.set_host("a2", "rack2");
  EXPECT_EQ(plan.host_of("a0"), "rack1");
  EXPECT_EQ(plan.host_of("unknown"), "");
  plan.schedule_host_outage("rack1", SimTime::millis(10), SimTime::millis(20));

  const SimTime mid = SimTime::millis(15);
  EXPECT_TRUE(plan.agent_down("a0", mid));   // correlated: both rack1 agents
  EXPECT_TRUE(plan.agent_down("a1", mid));
  EXPECT_FALSE(plan.agent_down("a2", mid));  // other rack untouched
  EXPECT_FALSE(plan.agent_down("a0", SimTime::millis(25)));
}

TEST(CampaignPlanTest, RollingUpgradeSequencesOneAgentAtATime) {
  FaultPlan plan(7);
  std::vector<std::string> agents = {"h0", "h1", "h2", "h3"};
  plan.schedule_rolling_upgrade(agents, SimTime::millis(1000),
                                Duration::millis(500));
  // Agent i is down for exactly [1000 + i*500, 1000 + (i+1)*500); at any
  // instant inside the campaign exactly one agent is down.
  for (int t = 900; t < 3200; t += 50) {
    const SimTime now = SimTime::millis(t);
    size_t down = 0;
    for (size_t i = 0; i < agents.size(); ++i) {
      const bool expect_down = t >= 1000 + static_cast<int>(i) * 500 &&
                               t < 1000 + static_cast<int>(i + 1) * 500;
      EXPECT_EQ(plan.agent_down(agents[i], now), expect_down)
          << agents[i] << " at t=" << t;
      if (plan.agent_down(agents[i], now)) ++down;
    }
    EXPECT_LE(down, 1u) << "overlapping rolling windows at t=" << t;
  }
}

TEST(CampaignPlanTest, DecideIgnoresCampaignsEntirely) {
  // Campaigns are pure schedule: a plan whose only content is outage windows
  // never produces a Bernoulli fault decision, so the RNG-facing surface of
  // the plan is untouched (the byte-identity tests below lean on this).
  FaultPlan plan(7);
  plan.schedule_outage("a0", SimTime::millis(0), SimTime::millis(1000));
  for (int t = 0; t < 50; ++t) {
    FaultDecision d = plan.decide(ElementId{"e"}, ChannelKind::kProcFs,
                                  SimTime::millis(t), 1);
    EXPECT_EQ(static_cast<int>(d.kind), static_cast<int>(FaultKind::kNone));
  }
}

// --- PERFSIGHT_FAULTS campaign grammar ---------------------------------------

TEST(CampaignEnvTest, FromEnvParsesCampaignGrammar) {
  setenv("PERFSIGHT_FAULTS",
         "seed=7,outage=a0@100-200,host=a1:rack1,host=a2:rack1,"
         "host_outage=rack1@300-400,rolling=h*3@1000+500",
         1);
  std::optional<FaultPlan> plan = FaultPlan::from_env();
  unsetenv("PERFSIGHT_FAULTS");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed(), 7u);
  EXPECT_TRUE(plan->has_campaign());

  EXPECT_TRUE(plan->agent_down("a0", SimTime::millis(150)));
  EXPECT_FALSE(plan->agent_down("a0", SimTime::millis(250)));
  // host_outage reaches agents through their tag.
  EXPECT_TRUE(plan->agent_down("a1", SimTime::millis(350)));
  EXPECT_TRUE(plan->agent_down("a2", SimTime::millis(350)));
  EXPECT_FALSE(plan->agent_down("a0", SimTime::millis(350)));
  // rolling=h*3@1000+500 desugars to h0,h1,h2 in sequence.
  EXPECT_TRUE(plan->agent_down("h0", SimTime::millis(1100)));
  EXPECT_TRUE(plan->agent_down("h1", SimTime::millis(1600)));
  EXPECT_TRUE(plan->agent_down("h2", SimTime::millis(2100)));
  EXPECT_FALSE(plan->agent_down("h3", SimTime::millis(1100)));
  EXPECT_FALSE(plan->agent_down("h0", SimTime::millis(1600)));
}

TEST(CampaignEnvTest, FromEnvRejectsMalformedCampaignItems) {
  // Every item here is a strict-grammar violation; none may half-apply.
  const char* bad[] = {
      "outage=a0@200-100",     // inverted window
      "outage=a0@100",         // no window
      "outage=@100-200",       // empty name
      "outage=a0@10x-200",     // trailing garbage in T0
      "host_outage=rack@5-5",  // empty window (T0 == T1)
      "host=a0:",              // empty tag
      "host=:rack",            // empty name
      "rolling=h*0@0+5",       // N == 0
      "rolling=h*2@10+0",      // W == 0
      "rolling=*2@10+5",       // empty prefix
      "rolling=h*2@10",        // no window length
      "rolling=h@10+5",        // no count
  };
  for (const char* spec : bad) {
    setenv("PERFSIGHT_FAULTS", spec, 1);
    std::optional<FaultPlan> plan = FaultPlan::from_env();
    unsetenv("PERFSIGHT_FAULTS");
    ASSERT_TRUE(plan.has_value()) << spec;
    EXPECT_FALSE(plan->has_campaign()) << spec << " half-applied";
    EXPECT_FALSE(plan->enabled()) << spec;
  }
  // Rejected campaign items do not poison the valid keys around them.
  setenv("PERFSIGHT_FAULTS", "seed=9,outage=a0@200-100,outage=a1@10-20", 1);
  std::optional<FaultPlan> plan = FaultPlan::from_env();
  unsetenv("PERFSIGHT_FAULTS");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed(), 9u);
  EXPECT_FALSE(plan->agent_down("a0", SimTime::millis(150)));
  EXPECT_TRUE(plan->agent_down("a1", SimTime::millis(15)));
}

// --- outage forcing through the query paths ----------------------------------

TEST(OutageForcingTest, WindowForcesMissingInAllPathsAndRecovers) {
  FakeSource s0("m0/el0", ChannelKind::kProcFs);
  s0.attrs = {{attr::kRxPkts, 10}, {attr::kTxPkts, 9}};
  FakeSource s1("m0/el1", ChannelKind::kMbSocket);
  s1.attrs = {{attr::kRxPkts, 20}};

  FaultPlan plan(7);
  plan.schedule_outage("a0", SimTime::millis(10), SimTime::millis(20));

  Agent agent("a0", 3);
  ASSERT_TRUE(agent.add_element(&s0).is_ok());
  ASSERT_TRUE(agent.add_element(&s1).is_ok());
  agent.set_fault_plan(&plan);
  RetryPolicy p;
  p.max_attempts = 3;
  agent.set_retry_policy(p);
  agent.set_breaker_config(no_breakers());

  // Before the window: fresh.
  Result<QueryResponse> before = agent.query(s0.id(), SimTime::millis(5));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().quality, DataQuality::kFresh);

  // Inside the window: the single path fails unavailable after all retries
  // (the schedule forces every attempt), and the batch + poll paths report
  // the identical outcome for every element.
  Result<QueryResponse> in = agent.query(s0.id(), SimTime::millis(15));
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(in.status().message().find("unavailable after 3 attempt(s)"),
            std::string::npos)
      << in.status().message();

  BatchResponse batch =
      agent.query_batch({s0.id(), s1.id()}, SimTime::millis(15));
  ASSERT_EQ(batch.responses.size(), 2u);
  for (const QueryResponse& r : batch.responses) {
    EXPECT_EQ(r.quality, DataQuality::kMissing);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(r.fail_code, StatusCode::kUnavailable);
  }
  for (const QueryResponse& r : agent.poll_all(SimTime::millis(15))) {
    EXPECT_EQ(r.quality, DataQuality::kMissing);
    EXPECT_EQ(r.attempts, 3u);
  }

  // After the window: the agent serves again (the window, not a breaker,
  // was the authority — no cooldown owed).
  Result<QueryResponse> after = agent.query(s0.id(), SimTime::millis(25));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().quality, DataQuality::kFresh);
}

// --- the rolling-upgrade differential gate -----------------------------------

// A 16-agent world under a rolling-upgrade campaign.  Two identical copies
// of every agent (same name, same seed, shared sources) let the sequential
// oracle and the pooled runs sweep without sharing RNG state; the campaign
// itself draws no RNG, so record bytes, qualities and failure text are
// RNG-independent and the fmt()-folded sweeps must match byte for byte.
struct RollingWorld {
  static constexpr size_t kAgents = 16;
  static constexpr size_t kPerAgent = 3;

  std::vector<std::unique_ptr<FakeSource>> sources;
  std::vector<std::unique_ptr<Agent>> seq_agents, par_agents;
  std::vector<std::vector<ElementId>> ids_of;
  std::vector<ElementId> all_ids;
  FaultPlan plan{7};

  explicit RollingWorld(bool mirrored = false) {
    const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                                 ChannelKind::kNetDeviceFile,
                                 ChannelKind::kOvsChannel};
    std::vector<std::string> names;
    for (size_t a = 0; a < kAgents; ++a) {
      names.push_back("host" + std::to_string(a));
      seq_agents.push_back(std::make_unique<Agent>(names.back(), a + 1));
      par_agents.push_back(std::make_unique<Agent>(names.back(), a + 1));
      ids_of.emplace_back();
      for (size_t e = 0; e < kPerAgent; ++e) {
        const size_t i = a * kPerAgent + e;
        auto s = std::make_unique<FakeSource>(
            "host" + std::to_string(a) + "/el" + std::to_string(e),
            kinds[i % 4]);
        s->attrs = {{attr::kRxPkts, static_cast<double>(100 * (i + 1))},
                    {attr::kTxPkts, static_cast<double>(90 * (i + 1))}};
        EXPECT_TRUE(seq_agents[a]->add_element(s.get()).is_ok());
        EXPECT_TRUE(par_agents[a]->add_element(s.get()).is_ok());
        ids_of[a].push_back(s->id());
        all_ids.push_back(s->id());
        sources.push_back(std::move(s));
      }
    }
    if (mirrored) {
      // Agent a's elements are also served by agent (a+1) % kAgents: under
      // a rolling upgrade (one agent down at a time) every element always
      // has a live replica.
      for (size_t a = 0; a < kAgents; ++a) {
        const size_t replica = (a + 1) % kAgents;
        for (size_t e = 0; e < kPerAgent; ++e) {
          FakeSource* s = sources[a * kPerAgent + e].get();
          EXPECT_TRUE(seq_agents[replica]->add_element(s).is_ok());
          EXPECT_TRUE(par_agents[replica]->add_element(s).is_ok());
        }
      }
    }
    plan.schedule_rolling_upgrade(names, SimTime::millis(1000),
                                  Duration::millis(500));
    RetryPolicy p;
    p.max_attempts = 2;
    for (size_t a = 0; a < kAgents; ++a) {
      for (Agent* ag : {seq_agents[a].get(), par_agents[a].get()}) {
        ag->set_fault_plan(&plan);
        ag->set_retry_policy(p);
        ag->set_breaker_config(no_breakers());
      }
    }
  }

  // One controller sweep over every element at `at`, folded to a string.
  // `agents` selects the world copy; null pool + batching off is the
  // sequential oracle.
  std::string sweep(std::vector<std::unique_ptr<Agent>>& agents, SimTime at,
                    bool batching, ThreadPool* pool, bool mirrored) {
    SimTime now = at;
    Controller c(
        [&now](Duration d) {
          now = now + d;
          return now;
        },
        [&now] { return now; });
    c.set_batching(batching);
    c.set_pool(pool);
    const TenantId tenant{1};
    for (size_t a = 0; a < kAgents; ++a) {
      c.register_agent(agents[a].get());
      for (const ElementId& id : ids_of[a]) {
        EXPECT_TRUE(c.register_element(tenant, id, agents[a].get()).is_ok());
      }
    }
    if (mirrored) {
      for (size_t a = 0; a < kAgents; ++a) {
        const size_t replica = (a + 1) % kAgents;
        for (const ElementId& id : ids_of[a]) {
          EXPECT_TRUE(
              c.register_mirror(tenant, id, agents[replica].get()).is_ok());
        }
      }
    }
    std::string out;
    for (const auto& r :
         c.get_attr_many(tenant, all_ids, {attr::kRxPkts, attr::kTxPkts})) {
      out += fmt(r);
    }
    return out;
  }
};

TEST(RollingUpgradeDifferentialTest, PooledSweepMatchesSequentialOracle) {
  RollingWorld world;
  ThreadPool pool2(2), pool8(8);
  // Before / first window / mid-campaign / last window / after.
  const int64_t times[] = {500, 1100, 3250, 8700, 9500};
  for (int64_t t : times) {
    const SimTime at = SimTime::millis(t);
    const std::string oracle =
        world.sweep(world.seq_agents, at, /*batching=*/false, nullptr,
                    /*mirrored=*/false);
    for (ThreadPool* pool :
         {static_cast<ThreadPool*>(nullptr), &pool2, &pool8}) {
      const std::string got = world.sweep(world.par_agents, at,
                                          /*batching=*/true, pool,
                                          /*mirrored=*/false);
      EXPECT_EQ(got, oracle)
          << "t=" << t << " pool=" << (pool ? pool->workers() : 0);
    }
    // Exactly one agent's elements are blind spots inside the campaign.
    const size_t expect_down =
        (t >= 1000 && t < 1000 + 16 * 500) ? RollingWorld::kPerAgent : 0;
    EXPECT_EQ(count_occurrences(oracle, "ERR("), expect_down) << "t=" << t;
  }
}

TEST(RollingUpgradeDifferentialTest, MirrorsEraseRollingBlindSpots) {
  RollingWorld plain;
  RollingWorld mirrored(/*mirrored=*/true);
  ThreadPool pool8(8);
  const int64_t times[] = {1100, 3250, 8700};
  for (int64_t t : times) {
    const SimTime at = SimTime::millis(t);
    const std::string plain_sweep =
        plain.sweep(plain.seq_agents, at, false, nullptr, false);
    const std::string seq =
        mirrored.sweep(mirrored.seq_agents, at, false, nullptr, true);
    const std::string par =
        mirrored.sweep(mirrored.par_agents, at, true, &pool8, true);
    // The quorum second round preserves the pooled-vs-sequential contract.
    EXPECT_EQ(par, seq) << "t=" << t;
    // Strictly fewer blind spots than the unmirrored run: the one down
    // agent's elements are served by its replica, annotated kReplica.
    EXPECT_EQ(count_occurrences(plain_sweep, "ERR("), RollingWorld::kPerAgent)
        << "t=" << t;
    EXPECT_LT(count_occurrences(seq, "ERR("),
              count_occurrences(plain_sweep, "ERR("))
        << "t=" << t;
    EXPECT_EQ(count_occurrences(seq, "ERR("), 0u) << "t=" << t;
    EXPECT_EQ(count_occurrences(seq, "q=replica"), RollingWorld::kPerAgent)
        << "t=" << t;
  }
}

// --- quorum goldens ----------------------------------------------------------

TEST(QuorumTest, ReplicaServesWhenPrimaryFailsAndDoubleFailureKeepsStatus) {
  FakeSource s0("m0/el0", ChannelKind::kProcFs);
  s0.attrs = {{attr::kRxPkts, 42}};
  FaultPlan primary_down(7);
  primary_down.schedule_outage("primary", SimTime::millis(0),
                               SimTime::millis(100));

  Agent primary("primary", 1), replica("replica", 2);
  ASSERT_TRUE(primary.add_element(&s0).is_ok());
  ASSERT_TRUE(replica.add_element(&s0).is_ok());
  primary.set_fault_plan(&primary_down);
  primary.set_breaker_config(no_breakers());
  replica.set_breaker_config(no_breakers());

  SimTime now = SimTime::millis(10);
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  const TenantId tenant{1};
  c.register_agent(&primary);
  c.register_agent(&replica);
  ASSERT_TRUE(c.register_element(tenant, s0.id(), &primary).is_ok());

  // Unmirrored golden: the primary's failure text.
  Result<Controller::QualifiedRecord> plain =
      c.get_attr_q(tenant, s0.id(), {attr::kRxPkts});
  ASSERT_FALSE(plain.ok());
  const std::string golden = fmt(plain);

  // Mirrored: the replica answers, annotated kReplica.
  ASSERT_TRUE(c.register_mirror(tenant, s0.id(), &replica).is_ok());
  Result<Controller::QualifiedRecord> q =
      c.get_attr_q(tenant, s0.id(), {attr::kRxPkts});
  ASSERT_TRUE(q.ok()) << q.status().message();
  EXPECT_EQ(q.value().quality, DataQuality::kReplica);
  EXPECT_EQ(q.value().record.get_or(attr::kRxPkts, -1), 42);

  // Double failure: take the replica down too — the PRIMARY's Status comes
  // back, byte-identical to the unmirrored run.
  FaultPlan replica_down(7);
  replica_down.schedule_outage("replica", SimTime::millis(0),
                               SimTime::millis(100));
  replica.set_fault_plan(&replica_down);
  Result<Controller::QualifiedRecord> dbl =
      c.get_attr_q(tenant, s0.id(), {attr::kRxPkts});
  ASSERT_FALSE(dbl.ok());
  EXPECT_EQ(fmt(dbl), golden);

  // A mirror must actually serve the element.
  Agent stranger("stranger", 3);
  EXPECT_EQ(c.register_mirror(tenant, s0.id(), &stranger).code(),
            StatusCode::kNotFound);
}

TEST(QuorumTest, MirrorIsNotConsultedWhenElementIsUnknown) {
  // kNotFound is a config error, not a collection failure: no quorum read.
  FakeSource s0("m0/el0", ChannelKind::kProcFs);
  s0.attrs = {{attr::kRxPkts, 1}};
  Agent a("a0", 1);
  ASSERT_TRUE(a.add_element(&s0).is_ok());
  SimTime now;
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  c.register_agent(&a);
  Result<Controller::QualifiedRecord> r =
      c.get_attr_q(TenantId{1}, ElementId{"m0/ghost"}, {attr::kRxPkts});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// Whichever side of a quorum pair fails first, once both are down the
// re-raised Status is the PRIMARY's — byte-identical between the two onset
// orders and to an unmirrored run.  The paths differ before the double
// failure (replica-first leaves the primary serving fresh; primary-first
// has the replica serving kReplica), which must leave no residue in the
// error.
TEST(QuorumTest, DoubleFailureReRaisesPrimaryStatusRegardlessOfOrder) {
  auto build = [](Agent& primary, Agent& replica, FakeSource& s0,
                  SimTime& now, FaultPlan* plan) {
    s0.attrs = {{attr::kRxPkts, 42}};
    ASSERT_TRUE(primary.add_element(&s0).is_ok());
    ASSERT_TRUE(replica.add_element(&s0).is_ok());
    for (Agent* a : {&primary, &replica}) {
      a->set_fault_plan(plan);
      a->set_breaker_config(no_breakers());
    }
    now = SimTime::millis(100);
  };
  auto controller_for = [](Agent& primary, SimTime& now) {
    auto c = std::make_unique<Controller>(
        [&now](Duration d) {
          now = now + d;
          return now;
        },
        [&now] { return now; });
    c->register_agent(&primary);
    return c;
  };
  const TenantId tenant{1};

  // Golden: unmirrored primary-down failure text.
  std::string golden;
  {
    FakeSource s0("m0/el0", ChannelKind::kProcFs);
    FaultPlan plan(7);
    plan.schedule_outage("primary", SimTime::millis(0), SimTime::millis(5000));
    Agent primary("primary", 1), replica("replica", 2);
    SimTime now;
    build(primary, replica, s0, now, &plan);
    auto c = controller_for(primary, now);
    ASSERT_TRUE(c->register_element(tenant, s0.id(), &primary).is_ok());
    Result<Controller::QualifiedRecord> q =
        c->get_attr_q(tenant, s0.id(), {attr::kRxPkts});
    ASSERT_FALSE(q.ok());
    golden = fmt(q);
  }

  auto run = [&](bool primary_first) {
    FakeSource s0("m0/el0", ChannelKind::kProcFs);
    FaultPlan plan(7);
    plan.schedule_outage(primary_first ? "primary" : "replica",
                         SimTime::millis(0), SimTime::millis(5000));
    plan.schedule_outage(primary_first ? "replica" : "primary",
                         SimTime::millis(400), SimTime::millis(5000));
    Agent primary("primary", 1), replica("replica", 2);
    SimTime now;
    build(primary, replica, s0, now, &plan);
    auto c = controller_for(primary, now);
    c->register_agent(&replica);
    EXPECT_TRUE(c->register_element(tenant, s0.id(), &primary).is_ok());
    EXPECT_TRUE(c->register_mirror(tenant, s0.id(), &replica).is_ok());

    // Single-failure phase: one side down, the element still answers.
    Result<Controller::QualifiedRecord> single =
        c->get_attr_q(tenant, s0.id(), {attr::kRxPkts});
    EXPECT_TRUE(single.ok()) << single.status().message();
    if (single.ok()) {
      EXPECT_EQ(static_cast<int>(single.value().quality),
                static_cast<int>(primary_first ? DataQuality::kReplica
                                               : DataQuality::kFresh));
      EXPECT_EQ(single.value().record.get_or(attr::kRxPkts, -1), 42);
    }

    // Both down: the re-raised error.
    now = SimTime::millis(450);
    Result<Controller::QualifiedRecord> dbl =
        c->get_attr_q(tenant, s0.id(), {attr::kRxPkts});
    EXPECT_FALSE(dbl.ok());
    return fmt(dbl);
  };

  EXPECT_EQ(run(/*primary_first=*/true), golden);
  EXPECT_EQ(run(/*primary_first=*/false), golden);
}

// A mirrored stack element is registered on its primary AND its replica
// agent; the diagnosis scan set must still count it once.  Mid-rolling-
// upgrade — primary down, quorum serving kReplica — a double-counted
// element would both inflate the coverage denominator and rank its loss
// twice.
TEST(QuorumTest, MirroredStackElementCountsOnceInCoverageMidRollingUpgrade) {
  FakeSource mirrored("h0/el0", ChannelKind::kProcFs);
  mirrored.attrs = {{attr::kRxPkts, 5000}, {attr::kTxPkts, 5000}};
  FakeSource plain("h1/el0", ChannelKind::kProcFs);
  plain.attrs = {{attr::kRxPkts, 3000}, {attr::kTxPkts, 3000}};

  FaultPlan plan(7);
  // h0 down [1000, 1500), h1 down [1500, 2000): mid-upgrade at 1200ms the
  // mirrored element is quorum-served by h1.
  plan.schedule_rolling_upgrade({"h0", "h1"}, SimTime::millis(1000),
                                Duration::millis(500));

  Agent h0("h0", 1), h1("h1", 2);
  ASSERT_TRUE(h0.add_element(&mirrored).is_ok());
  ASSERT_TRUE(h1.add_element(&mirrored).is_ok());
  ASSERT_TRUE(h1.add_element(&plain).is_ok());
  for (Agent* a : {&h0, &h1}) {
    a->set_fault_plan(&plan);
    a->set_breaker_config(no_breakers());
  }

  SimTime now = SimTime::millis(1050);
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  const TenantId tenant{1};
  c.register_agent(&h0);
  c.register_agent(&h1);
  ASSERT_TRUE(c.register_element(tenant, mirrored.id(), &h0).is_ok());
  ASSERT_TRUE(c.register_element(tenant, plain.id(), &h1).is_ok());
  ASSERT_TRUE(c.register_mirror(tenant, mirrored.id(), &h1).is_ok());
  c.register_stack_element(&h0, mirrored.id());
  c.register_stack_element(&h1, mirrored.id());  // replica's stack view
  c.register_stack_element(&h1, plain.id());

  ContentionDetector det(&c, RuleBook::standard());
  ContentionReport report = det.diagnose(tenant, Duration::millis(100));

  // Two distinct elements, each once: the mirrored one served kReplica by
  // h1 while h0 is down, the plain one fresh.
  EXPECT_TRUE(report.blind_spots.empty());
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  ASSERT_EQ(report.ranked.size(), 2u);
  EXPECT_NE(report.ranked[0].id, report.ranked[1].id);
}

// --- reconnect-aware hello diffing -------------------------------------------

// Keeps sources alive across server generations (agents reference them).
struct SourceKeeper {
  std::vector<std::unique_ptr<FakeSource>> keep;

  FakeSource* source(const std::string& id) {
    auto s = std::make_unique<FakeSource>(id, ChannelKind::kProcFs);
    s->attrs = {{attr::kRxPkts, static_cast<double>(keep.size() + 1)}};
    keep.push_back(std::move(s));
    return keep.back().get();
  }
};

TEST(ReconnectDiffTest, DepartedAndAddedElementsSurfaceWithoutRedial) {
  SourceKeeper world;
  const ElementId el0{"f/el0"}, el1{"f/el1"}, el2{"f/el2"}, el3{"f/el3"};

  auto gen1 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen1->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(gen1->add_element(world.source(el1.name)).is_ok());
  ASSERT_TRUE(gen1->add_element(world.source(el2.name)).is_ok());
  auto server1 = std::make_unique<RemoteAgentServer>(
      gen1.get(), transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server1->start().is_ok());
  const transport::Endpoint ep = server1->endpoint();

  RemoteAgent client(ep);
  ASSERT_TRUE(client.connect().is_ok());
  EXPECT_TRUE(client.departed_elements().empty());
  EXPECT_TRUE(client.drain_roster_diffs().empty());

  // Restart with a mutated element set: el0 removed, el3 added.  The first
  // batch after the restart rides the reconnect (its request predates the
  // diff); it settles the departed set for everything that follows.
  server1->stop();
  auto gen2 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen2->add_element(world.source(el1.name)).is_ok());
  ASSERT_TRUE(gen2->add_element(world.source(el2.name)).is_ok());
  ASSERT_TRUE(gen2->add_element(world.source(el3.name)).is_ok());
  auto server2 = std::make_unique<RemoteAgentServer>(gen2.get(), ep);
  ASSERT_TRUE(server2->start().is_ok());
  (void)client.query_batch({el1}, SimTime::millis(1));

  // The departed element is answered locally (never travels the wire) while
  // the added one serves — all without a full redial.
  BatchResponse b =
      client.query_batch({el0, el1, el2, el3}, SimTime::millis(2));
  ASSERT_EQ(b.responses.size(), 4u);
  EXPECT_EQ(b.responses[0].record.element, el0);
  EXPECT_EQ(b.responses[0].quality, DataQuality::kMissing);
  EXPECT_EQ(b.responses[0].fail_code, StatusCode::kFailedPrecondition);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(b.responses[i].quality, DataQuality::kFresh)
        << b.responses[i].record.element.name;
  }
  EXPECT_EQ(b.degraded, 1u);

  std::vector<RemoteAgent::RosterDiff> diffs = client.drain_roster_diffs();
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].old_epoch, diffs[0].new_epoch);
  ASSERT_EQ(diffs[0].removed.size(), 1u);
  EXPECT_EQ(diffs[0].removed[0], el0);
  ASSERT_EQ(diffs[0].added.size(), 1u);
  EXPECT_EQ(diffs[0].added[0], el3);
  EXPECT_EQ(client.departed_elements(), std::vector<ElementId>{el0});
  EXPECT_TRUE(client.has_element(el3));  // added: servable, no extra dial

  RemoteAgent::TransportStats stats = client.transport_stats();
  EXPECT_EQ(stats.connects, 2u);
  EXPECT_EQ(stats.reconnects, 1u);

  // The single path fails fast with the departure status — no wire trip.
  Result<QueryResponse> gone =
      client.query_attrs(el0, {attr::kRxPkts}, SimTime::millis(3));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(gone.status().message().find("departed at reconnect"),
            std::string::npos)
      << gone.status().message();

  // Third generation re-adds el0: the departure is forgiven at the next
  // reconnect and the element serves again.
  server2->stop();
  auto gen3 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen3->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(gen3->add_element(world.source(el1.name)).is_ok());
  ASSERT_TRUE(gen3->add_element(world.source(el2.name)).is_ok());
  ASSERT_TRUE(gen3->add_element(world.source(el3.name)).is_ok());
  auto server3 = std::make_unique<RemoteAgentServer>(gen3.get(), ep);
  ASSERT_TRUE(server3->start().is_ok());
  (void)client.query_batch({el1}, SimTime::millis(4));

  BatchResponse b3 = client.query_batch({el0, el3}, SimTime::millis(5));
  ASSERT_EQ(b3.responses.size(), 2u);
  EXPECT_EQ(b3.responses[0].quality, DataQuality::kFresh);
  EXPECT_TRUE(client.departed_elements().empty());
  diffs = client.drain_roster_diffs();
  ASSERT_EQ(diffs.size(), 1u);
  ASSERT_EQ(diffs[0].added.size(), 1u);
  EXPECT_EQ(diffs[0].added[0], el0);
  EXPECT_TRUE(diffs[0].removed.empty());
}

TEST(ReconnectDiffTest, UnchangedElementSetSkipsDiffViaEpoch) {
  SourceKeeper world;
  const ElementId el0{"f/el0"}, el1{"f/el1"};
  auto gen1 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen1->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(gen1->add_element(world.source(el1.name)).is_ok());
  auto server1 = std::make_unique<RemoteAgentServer>(
      gen1.get(), transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server1->start().is_ok());
  const transport::Endpoint ep = server1->endpoint();

  RemoteAgent client(ep);
  ASSERT_TRUE(client.connect().is_ok());

  // Same name, same element set, fresh process: the epoch matches, the diff
  // walk is skipped, and no roster delta is reported.
  server1->stop();
  auto gen2 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen2->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(gen2->add_element(world.source(el1.name)).is_ok());
  auto server2 = std::make_unique<RemoteAgentServer>(gen2.get(), ep);
  ASSERT_TRUE(server2->start().is_ok());

  BatchResponse b = client.query_batch({el0, el1}, SimTime::millis(1));
  ASSERT_EQ(b.responses.size(), 2u);
  EXPECT_EQ(b.responses[0].quality, DataQuality::kFresh);
  EXPECT_TRUE(client.drain_roster_diffs().empty());
  RemoteAgent::TransportStats stats = client.transport_stats();
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.epoch_skips, 1u);
  EXPECT_TRUE(client.departed_elements().empty());
}

TEST(ReconnectDiffTest, ControllerMergeCarriesDepartureStatusBothPaths) {
  // The controller's sequential and scatter-gather paths reconstruct the
  // identical "departed at reconnect" Status from the synthesized batch
  // responses — the byte-identity contract extends to departures.
  SourceKeeper world;
  const ElementId el0{"f/el0"}, el1{"f/el1"};
  auto gen1 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen1->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(gen1->add_element(world.source(el1.name)).is_ok());
  auto server1 = std::make_unique<RemoteAgentServer>(
      gen1.get(), transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server1->start().is_ok());
  const transport::Endpoint ep = server1->endpoint();

  RemoteAgent client(ep);
  ASSERT_TRUE(client.connect().is_ok());

  SimTime now;
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  const TenantId tenant{1};
  c.register_agent(&client);
  ASSERT_TRUE(c.register_element(tenant, el0, &client).is_ok());
  ASSERT_TRUE(c.register_element(tenant, el1, &client).is_ok());

  server1->stop();
  auto gen2 = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(gen2->add_element(world.source(el1.name)).is_ok());
  auto server2 = std::make_unique<RemoteAgentServer>(gen2.get(), ep);
  ASSERT_TRUE(server2->start().is_ok());
  (void)client.query_batch({el1}, SimTime::millis(1));  // settle the diff

  std::string batched;
  c.set_batching(true);
  for (const auto& r : c.get_attr_many(tenant, {el0, el1}, {attr::kRxPkts})) {
    batched += fmt(r);
  }
  std::string sequential;
  c.set_batching(false);
  for (const auto& r : c.get_attr_many(tenant, {el0, el1}, {attr::kRxPkts})) {
    sequential += fmt(r);
  }
  EXPECT_EQ(batched, sequential);
  EXPECT_NE(batched.find("departed at reconnect"), std::string::npos)
      << batched;
  EXPECT_NE(batched.find("ERR(4)"), std::string::npos) << batched;
}

// --- adaptive retry budgets --------------------------------------------------

TEST(AdaptiveBudgetTest, DerivedBudgetClampsChainsAndDisabledIsByteIdentical) {
  // One channel kind keeps the p99 story simple: after a fault-free warm-up
  // the derived budget (p99 × max_attempts) is a few ms at most, far below
  // the 50 ms timeout spike the plan charges per attempt.
  std::vector<std::unique_ptr<FakeSource>> sources;
  for (int i = 0; i < 4; ++i) {
    auto s = std::make_unique<FakeSource>("m0/el" + std::to_string(i),
                                          ChannelKind::kProcFs);
    s->attrs = {{attr::kRxPkts, static_cast<double>(i)}};
    sources.push_back(std::move(s));
  }

  RetryPolicy p;
  p.max_attempts = 3;  // element_budget stays 0: the fixed path is unbounded
  Agent fixed("a0", 7), adaptive("a0", 7), off("a0", 7), capped("a0", 7);
  for (Agent* a : {&fixed, &adaptive, &off, &capped}) {
    for (const auto& s : sources) ASSERT_TRUE(a->add_element(s.get()).is_ok());
    a->set_retry_policy(p);
    a->set_breaker_config(no_breakers());
  }
  RetryPolicy pc = p;
  pc.element_budget = Duration::micros(300);
  capped.set_retry_policy(pc);
  adaptive.set_adaptive_budget(true);
  capped.set_adaptive_budget(true);
  off.set_adaptive_budget(true);
  off.set_adaptive_budget(false);  // toggled off again: must match `fixed`

  // Fault-free warm-up: every agent makes the identical calls, so all four
  // channel histograms are identical when the faults arrive.
  for (int t = 0; t < 30; ++t) {
    for (Agent* a : {&fixed, &adaptive, &off, &capped}) {
      (void)a->poll_all(SimTime::millis(t));
    }
  }
  const double p99 =
      fixed.channel_latency(ChannelKind::kProcFs).approx_quantile(0.99);
  ASSERT_GT(p99, 0.0);
  const int64_t derived_ns =
      (Duration::seconds(p99) * static_cast<double>(p.max_attempts)).ns();

  // Every attempt now times out with a 50 ms spike.
  FaultPlan plan(7);
  ChannelFaultSpec spec;
  spec.timeout_p = 1.0;
  plan.set_channel_faults(ChannelKind::kProcFs, spec);
  plan.set_timeout_spike(Duration::millis(50));
  for (Agent* a : {&fixed, &adaptive, &off, &capped}) a->set_fault_plan(&plan);

  // First faulted query per agent: the budget derives from the pristine
  // warmed histogram.
  const ElementId el0 = sources[0]->id();
  BatchResponse bf = fixed.query_batch({el0}, SimTime::millis(100));
  BatchResponse bo = off.query_batch({el0}, SimTime::millis(100));
  BatchResponse ba = adaptive.query_batch({el0}, SimTime::millis(100));
  BatchResponse bc = capped.query_batch({el0}, SimTime::millis(100));
  ASSERT_EQ(bf.responses.size(), 1u);
  ASSERT_EQ(bo.responses.size(), 1u);
  ASSERT_EQ(ba.responses.size(), 1u);
  ASSERT_EQ(bc.responses.size(), 1u);

  // Fixed: unbudgeted — the full three-spike chain, far past the derived cap.
  EXPECT_EQ(bf.responses[0].quality, DataQuality::kMissing);
  EXPECT_GT(bf.responses[0].response_time.ns(), derived_ns);
  // Adaptive: the derived budget clamps the chain and records a deadline hit.
  EXPECT_EQ(ba.responses[0].quality, DataQuality::kMissing);
  EXPECT_LE(ba.responses[0].response_time.ns(), derived_ns);
  EXPECT_LT(ba.responses[0].response_time.ns(),
            bf.responses[0].response_time.ns());
  EXPECT_GE(adaptive.fault_stats().deadline_hits, 1u);
  EXPECT_EQ(fixed.fault_stats().deadline_hits, 0u);
  // Capped: a configured sweep deadline tighter than the derived budget wins
  // (the adaptive budget never *extends* past the configured clamp).
  EXPECT_LE(bc.responses[0].response_time.ns(), Duration::micros(300).ns());

  // Disabled == never-enabled, byte for byte, through faulted rounds (the
  // `off` twin mirrors every call `fixed` makes, keeping RNG in lockstep).
  EXPECT_EQ(to_wire(bf.responses[0].record), to_wire(bo.responses[0].record));
  EXPECT_EQ(bf.responses[0].response_time.ns(),
            bo.responses[0].response_time.ns());
  EXPECT_EQ(bf.responses[0].attempts, bo.responses[0].attempts);
  for (int t = 101; t < 121; ++t) {
    std::vector<QueryResponse> rf = fixed.poll_all(SimTime::millis(t));
    std::vector<QueryResponse> ro = off.poll_all(SimTime::millis(t));
    ASSERT_EQ(rf.size(), ro.size());
    for (size_t i = 0; i < rf.size(); ++i) {
      EXPECT_EQ(to_wire(rf[i].record), to_wire(ro[i].record));
      EXPECT_EQ(rf[i].response_time.ns(), ro[i].response_time.ns());
      EXPECT_EQ(static_cast<int>(rf[i].quality),
                static_cast<int>(ro[i].quality));
      EXPECT_EQ(rf[i].attempts, ro[i].attempts);
      EXPECT_EQ(static_cast<int>(rf[i].fail_code),
                static_cast<int>(ro[i].fail_code));
    }
  }
}

// --- CI chaos matrix ---------------------------------------------------------

// CI runs this test under the three campaign presets (brownout,
// rolling-upgrade, correlated host loss); standalone runs use a
// representative default so the invariants always execute.  Agents are
// named host0..host3 and tagged rack0/rack1 to match the presets.
TEST(ChaosMatrixTest, CampaignSweepInvariantsHoldUnderAnyPlan) {
  std::optional<FaultPlan> env = FaultPlan::from_env();
  FaultPlan fallback(11);
  fallback.schedule_rolling_upgrade({"host0", "host1", "host2", "host3"},
                                    SimTime::millis(100),
                                    Duration::millis(200));
  FaultPlan& plan = env.has_value() ? *env : fallback;
  plan.set_host("host0", "rack0");
  plan.set_host("host1", "rack0");
  plan.set_host("host2", "rack1");
  plan.set_host("host3", "rack1");

  constexpr size_t kAgents = 4, kPerAgent = 4;
  const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                               ChannelKind::kNetDeviceFile,
                               ChannelKind::kOvsChannel};
  std::vector<std::unique_ptr<FakeSource>> sources;
  std::vector<std::unique_ptr<Agent>> seq, par;
  RetryPolicy p;
  p.max_attempts = 2;
  p.element_budget = Duration::millis(8);
  for (size_t a = 0; a < kAgents; ++a) {
    seq.push_back(std::make_unique<Agent>("host" + std::to_string(a), a + 1));
    par.push_back(std::make_unique<Agent>("host" + std::to_string(a), a + 1));
    for (size_t e = 0; e < kPerAgent; ++e) {
      const size_t i = a * kPerAgent + e;
      auto s = std::make_unique<FakeSource>(
          "host" + std::to_string(a) + "/el" + std::to_string(e),
          kinds[i % 4]);
      s->attrs = {{attr::kRxPkts, static_cast<double>(i + 1)},
                  {attr::kTxPkts, 1.0}};
      ASSERT_TRUE(seq[a]->add_element(s.get()).is_ok());
      ASSERT_TRUE(par[a]->add_element(s.get()).is_ok());
      sources.push_back(std::move(s));
    }
    for (Agent* ag : {seq[a].get(), par[a].get()}) {
      ag->set_fault_plan(&plan);
      ag->set_retry_policy(p);
    }
  }

  ThreadPool pool(4);
  bool saw_outage = false;
  for (int round = 0; round < 30; ++round) {
    const SimTime now = SimTime::millis(round * 50);
    if (plan.campaign_active(now)) saw_outage = true;
    for (size_t a = 0; a < kAgents; ++a) {
      std::vector<QueryResponse> rs = seq[a]->poll_all(now);
      std::vector<QueryResponse> rp = par[a]->poll_all(now, &pool);
      ASSERT_EQ(rs.size(), kPerAgent);
      ASSERT_EQ(rp.size(), rs.size());
      const bool down =
          plan.has_campaign() && plan.agent_down(seq[a]->name(), now);
      for (size_t i = 0; i < rs.size(); ++i) {
        // Pooled equals sequential at any campaign intensity; budgets hold;
        // a down agent reports every element missing.
        EXPECT_EQ(to_wire(rs[i].record), to_wire(rp[i].record));
        EXPECT_EQ(static_cast<int>(rs[i].quality),
                  static_cast<int>(rp[i].quality));
        EXPECT_EQ(rs[i].attempts, rp[i].attempts);
        EXPECT_LE(rs[i].response_time.ns(), p.element_budget.ns());
        if (down) {
          EXPECT_EQ(rs[i].quality, DataQuality::kMissing);
        }
        const int q = static_cast<int>(rs[i].quality);
        EXPECT_GE(q, static_cast<int>(DataQuality::kFresh));
        EXPECT_LE(q, static_cast<int>(DataQuality::kReplica));
      }
    }
  }
  // The fallback plan (and every CI preset) schedules real windows inside
  // the swept range; a preset that never fired would gut this test.
  if (plan.has_campaign()) {
    EXPECT_TRUE(saw_outage);
  }
}

// --- churn under campaigns (TSan target) -------------------------------------

TEST(ChaosChurnTest, ReconnectsRosterDrainsAndCampaignSweepsRace) {
  SourceKeeper world;
  const ElementId el0{"f/el0"}, el1{"f/el1"};
  auto agent = std::make_unique<Agent>("fleet-0", 1);
  ASSERT_TRUE(agent->add_element(world.source(el0.name)).is_ok());
  ASSERT_TRUE(agent->add_element(world.source(el1.name)).is_ok());
  FaultPlan plan(7);
  // Windows pepper the whole swept range so queries race the forcing path.
  for (int w = 0; w < 50; ++w) {
    plan.schedule_outage("fleet-0", SimTime::millis(w * 20),
                         SimTime::millis(w * 20 + 10));
  }
  agent->set_fault_plan(&plan);
  agent->set_breaker_config(no_breakers());

  auto server = std::make_unique<RemoteAgentServer>(
      agent.get(), transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server->start().is_ok());

  RemoteAgent client(server->endpoint());
  ASSERT_TRUE(client.connect().is_ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Batches race the server's own campaign-forced polls.
  threads.emplace_back([&] {
    int t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      BatchResponse b = client.query_batch({el0, el1}, SimTime::millis(++t));
      EXPECT_LE(b.responses.size(), 2u);
    }
  });
  // Roster bookkeeping readers race the reconnect path.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)client.departed_elements();
      (void)client.drain_roster_diffs();
      (void)client.transport_stats();
    }
  });
  // Server-side campaign sweeps.
  threads.emplace_back([&] {
    int t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)agent->poll_all(SimTime::millis(++t));
    }
  });
  // Churner: dials and hangs up, forcing the event loop to juggle accepts
  // and reaps while the steady client's batches are in flight.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      RemoteAgent ephemeral(server->endpoint());
      if (ephemeral.connect().is_ok()) {
        (void)ephemeral.query_batch({el0}, SimTime::millis(1));
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(server->accept_errors(), 0u);
}

}  // namespace
}  // namespace perfsight
