// System-wide conservation properties:
//  * the packet path never creates or destroys packets — everything offered
//    is delivered, dropped at an instrumented element, or still queued;
//  * the stream layer is lossless end-to-end (probe "drops" are counter
//    signals, not data loss): after the source stops and buffers drain, the
//    sink has read exactly what the source wrote;
//  * the wire format round-trips arbitrary records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "mbox/app.h"
#include "mbox/presets.h"
#include "mbox/stream.h"
#include "perfsight/stats.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight {
namespace {

using namespace literals;

// --- packet-path conservation ------------------------------------------------

class PacketConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacketConservation, OfferedEqualsDeliveredPlusDroppedPlusQueued) {
  Pcg32 rng(GetParam());
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  // Random-ish stressed configuration.
  params.pnic_rate = DataRate::gbps(1 + rng.next_below(9));
  params.tun_queue_pkts = 256 + rng.next_below(4096);
  vm::PhysicalMachine m("m0", params, &sim);
  const int vms = 2 + static_cast<int>(rng.next_below(3));
  std::vector<vm::IngressSource*> sources;
  for (int i = 0; i < vms; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    m.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 256 + rng.next_below(1300);
    m.route_flow_to_vm(f, v);
    sources.push_back(m.add_ingress_source(
        "s" + std::to_string(i), f,
        DataRate::mbps(200 + rng.next_below(3000))));
  }
  if (rng.next_below(2) == 0) {
    m.add_mem_hog("hog")->set_demand_bytes_per_sec(30e9);
  }
  if (rng.next_below(2) == 0) {
    m.add_vm_cpu_hog(0)->set_demand_cores(1.0);
  }
  sim.run_for(1_s);
  // Stop the offered load and drain the pipeline.
  for (auto* s : sources) s->set_rate(DataRate::zero());
  sim.run_for(1_s);

  // Everything accepted into the machine (pNIC rx counter) must be
  // accounted for: delivered to an app, dropped at an instrumented element
  // downstream, or still sitting in a queue.
  uint64_t accepted = m.pnic()->stats().pkts_in.value();
  uint64_t delivered = 0;
  uint64_t dropped = m.backlog()->stats().drop_pkts.value() +
                     m.vswitch()->stats().drop_pkts.value();
  uint64_t queued = m.pnic()->rx_queued_packets() + m.backlog()->queued_packets();
  for (int i = 0; i < vms; ++i) {
    delivered += m.app(i)->stats().pkts_in.value();
    dropped += m.tun(i)->stats().drop_pkts.value() +
               m.vnic(i)->stats().drop_pkts.value() +
               m.guest_socket(i)->stats().drop_pkts.value() +
               m.guest_backlog(i)->stats().drop_pkts.value();
    queued += m.tun(i)->queued_packets() + m.vnic(i)->rx_queued_packets() +
              m.guest_socket(i)->queued_packets() +
              m.guest_backlog(i)->queued_packets();
  }
  EXPECT_EQ(accepted, delivered + dropped + queued) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketConservation,
                         ::testing::Values(11, 222, 3333));

// --- stream losslessness ---------------------------------------------------

class StreamLossless : public ::testing::TestWithParam<int> {};

TEST_P(StreamLossless, SinkReadsExactlyWhatSourceWrote) {
  sim::Simulator sim(Duration::millis(1));
  mbox::StreamMachine m(mbox::StreamMachineConfig{"m0", 8, 25e9, 16}, &sim);
  mbox::StreamVmConfig va;
  va.name = "a";
  va.vnic = DataRate::mbps(50 * GetParam());
  auto* A = m.add_vm(va);
  mbox::StreamVmConfig vb;
  vb.name = "b";
  vb.vnic = 100_mbps;
  auto* B = m.add_vm(vb);
  auto* c = m.connect(A, B, {"a-b"});
  mbox::StreamAppConfig src_cfg = mbox::presets::client(40_mbps);
  auto* src = m.add_app(A, "src", src_cfg);
  src->add_output(c, 1.0);
  auto* dst = m.add_app(B, "dst", mbox::presets::server(DataRate::gbps(1)));
  dst->add_input(c);
  // Contention so the path throttles and "probe drops" fire.
  auto* hog = m.add_mem_hog("hog");
  hog->set_demand_bytes_per_sec(24e9);

  sim.run_for(2_s);
  src->set_gen_rate(1e-9);  // effectively stop generating
  hog->set_demand_bytes_per_sec(0);
  sim.run_for(2_s);  // drain

  // Lossless: everything the source wrote is now at the sink (probe drops
  // are a TUN counter signal, not data loss).
  EXPECT_EQ(dst->stats().bytes_in.value(), src->stats().bytes_out.value());
  EXPECT_EQ(c->readable(), 0u);
}

INSTANTIATE_TEST_SUITE_P(VnicSizes, StreamLossless, ::testing::Values(1, 4));

// --- wire-format fuzz round trip ------------------------------------------------

class WireRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireRoundTrip, RandomRecordsSurvive) {
  Pcg32 rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    StatsRecord r;
    r.timestamp = SimTime::nanos(static_cast<int64_t>(rng.next_u32()) *
                                 (rng.next_below(2) ? 1 : 1000));
    std::string name = "m";
    for (int i = 0; i < 1 + static_cast<int>(rng.next_below(12)); ++i) {
      const char alphabet[] =
          "abcdefghijklmnopqrstuvwxyz0123456789/-_.";
      name += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    r.element = ElementId{name};
    int attrs = static_cast<int>(rng.next_below(6));
    for (int a = 0; a < attrs; ++a) {
      double v = rng.next_below(2) ? static_cast<double>(rng.next_u32())
                                   : rng.uniform(-1e6, 1e6);
      r.attrs.push_back({"attr" + std::to_string(a), v});
    }
    Result<StatsRecord> back = from_wire(to_wire(r));
    ASSERT_TRUE(back.ok()) << to_wire(r);
    EXPECT_EQ(back.value().element, r.element);
    EXPECT_EQ(back.value().timestamp.ns(), r.timestamp.ns());
    ASSERT_EQ(back.value().attrs.size(), r.attrs.size());
    for (size_t a = 0; a < r.attrs.size(); ++a) {
      EXPECT_EQ(back.value().attrs[a].name, r.attrs[a].name);
      EXPECT_NEAR(back.value().attrs[a].value, r.attrs[a].value,
                  1e-6 * std::max(1.0, std::fabs(r.attrs[a].value)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace perfsight
