// Algorithm 1 unit tests with scripted element statistics: loss ranking,
// spread classification (shared element / multi-VM / single-VM), rule-book
// candidate mapping and aux-signal disambiguation.
#include "perfsight/contention.h"

#include <gtest/gtest.h>

#include "perfsight/agent.h"
#include "perfsight/controller.h"

namespace perfsight {
namespace {

struct ScriptedElement : StatsSource {
  ScriptedElement(std::string n, ElementKind k, int vm_index)
      : id_{std::move(n)}, kind(k), vm(vm_index) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = {{attr::kDropPkts, drops},
               {attr::kRxPkts, in_pkts},
               {attr::kTxPkts, out_pkts},
               {attr::kType, static_cast<double>(static_cast<int>(kind))},
               {attr::kVm, static_cast<double>(vm)}};
    return r;
  }

  ElementId id_;
  ElementKind kind;
  int vm;
  double drops = 0, in_pkts = 0, out_pkts = 0;
  double drop_rate = 0;  // drops added per second of advance
};

class ContentionUnit : public ::testing::Test {
 protected:
  ContentionUnit()
      : agent_("a0"),
        controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }) {
    controller_.register_agent(&agent_);
  }

  ScriptedElement* element(const std::string& name, ElementKind k, int vm) {
    elems_.push_back(std::make_unique<ScriptedElement>(name, k, vm));
    ScriptedElement* e = elems_.back().get();
    PS_CHECK(agent_.add_element(e).is_ok());
    controller_.register_stack_element(&agent_, e->id());
    return e;
  }
  void own(ScriptedElement* e) {
    PS_CHECK(
        controller_.register_element(kTenant, e->id(), &agent_).is_ok());
  }
  SimTime advance(Duration d) {
    now_ = now_ + d;
    for (auto& e : elems_) e->drops += e->drop_rate * d.sec();
    if (advance_hook_) advance_hook_(d.sec());
    return now_;
  }
  ContentionReport diagnose(const AuxSignals& aux = {}) {
    ContentionDetector det(&controller_, RuleBook::standard());
    det.set_loss_threshold(10);
    return det.diagnose(kTenant, Duration::seconds(1.0), aux);
  }

  static constexpr TenantId kTenant{1};
  SimTime now_;
  Agent agent_;
  Controller controller_;
  std::vector<std::unique_ptr<ScriptedElement>> elems_;
  std::function<void(double)> advance_hook_;
};

TEST_F(ContentionUnit, NoLossNoProblem) {
  auto* tun = element("m0/vm0/tun", ElementKind::kTun, 0);
  own(tun);
  ContentionReport r = diagnose();
  EXPECT_FALSE(r.problem_found);
  EXPECT_FALSE(r.ranked.empty());  // scanned, just not lossy
}

TEST_F(ContentionUnit, RanksElementsByLoss) {
  auto* a = element("m0/vm0/tun", ElementKind::kTun, 0);
  auto* b = element("m0/vm1/tun", ElementKind::kTun, 1);
  auto* c = element("m0/pnic", ElementKind::kPNic, -1);
  own(a);
  a->drop_rate = 100;
  b->drop_rate = 900;
  c->drop_rate = 50;
  ContentionReport r = diagnose();
  ASSERT_TRUE(r.problem_found);
  ASSERT_EQ(r.ranked.size(), 3u);
  EXPECT_EQ(r.ranked[0].id, b->id());
  EXPECT_EQ(r.ranked[1].id, a->id());
  EXPECT_EQ(r.ranked[2].id, c->id());
}

TEST_F(ContentionUnit, SingleVmTunLossIsBottleneck) {
  auto* a = element("m0/vm0/tun", ElementKind::kTun, 0);
  auto* b = element("m0/vm1/tun", ElementKind::kTun, 1);
  own(a);
  (void)b;
  a->drop_rate = 500;
  ContentionReport r = diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.spread, LossSpread::kSingleVm);
  EXPECT_FALSE(r.is_contention);
  ASSERT_EQ(r.candidate_resources.size(), 1u);
  EXPECT_EQ(r.candidate_resources[0], ResourceKind::kVmLocal);
}

TEST_F(ContentionUnit, MultiVmTunLossIsContention) {
  auto* a = element("m0/vm0/tun", ElementKind::kTun, 0);
  auto* b = element("m0/vm1/tun", ElementKind::kTun, 1);
  own(a);
  a->drop_rate = 500;
  b->drop_rate = 480;
  ContentionReport r = diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.spread, LossSpread::kMultiVm);
  EXPECT_TRUE(r.is_contention);
  EXPECT_EQ(r.affected_vms, (std::vector<int>{0, 1}));
  EXPECT_GE(r.candidate_resources.size(), 2u);  // ambiguous without aux
}

TEST_F(ContentionUnit, SharedElementLossIsContention) {
  auto* tun = element("m0/vm0/tun", ElementKind::kTun, 0);
  auto* bl = element("m0/pcpu-backlog", ElementKind::kPCpuBacklog, -1);
  own(tun);
  bl->drop_rate = 1000;
  ContentionReport r = diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kPCpuBacklog);
  EXPECT_EQ(r.spread, LossSpread::kSharedElement);
  EXPECT_TRUE(r.is_contention);
}

TEST_F(ContentionUnit, AuxSignalsNarrowTheAmbiguousSet) {
  auto* a = element("m0/vm0/tun", ElementKind::kTun, 0);
  auto* b = element("m0/vm1/tun", ElementKind::kTun, 1);
  own(a);
  a->drop_rate = 500;
  b->drop_rate = 500;

  AuxSignals cpu_hot;
  cpu_hot.host_cpu_utilization = 0.99;
  cpu_hot.nic_capacity = DataRate::gbps(10);
  cpu_hot.nic_tx_throughput = DataRate::gbps(1);
  ContentionReport r = diagnose(cpu_hot);
  // CPU stays a candidate; egress and memory-space are ruled out.
  bool has_cpu = false, has_egress = false;
  for (ResourceKind res : r.candidate_resources) {
    has_cpu |= res == ResourceKind::kCpu;
    has_egress |= res == ResourceKind::kOutgoingBandwidth;
  }
  EXPECT_TRUE(has_cpu);
  EXPECT_FALSE(has_egress);
}

// An element exposing only in/out counters (no explicit drop counter), as
// some legacy kernel elements do; the detector must use the paper's
// (in - out) growth fallback.
struct MinimalElement : StatsSource {
  ElementId id_{"m0/legacy-tun"};
  double in = 0, out = 0;
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = {{attr::kRxPkts, in},
               {attr::kTxPkts, out},
               {attr::kType,
                static_cast<double>(static_cast<int>(ElementKind::kTun))},
               {attr::kVm, 0}};
    return r;
  }
};

TEST_F(ContentionUnit, FallsBackToInMinusOutWithoutDropCounter) {
  MinimalElement minimal;
  PS_CHECK(agent_.add_element(&minimal).is_ok());
  controller_.register_stack_element(&agent_, minimal.id());
  auto* owned = element("m0/vm0/tun", ElementKind::kTun, 0);
  own(owned);

  // During the measurement window, in grows faster than out: 200 pkts/s of
  // inferred loss.
  advance_hook_ = [&](double s) {
    minimal.in += 1000 * s;
    minimal.out += 800 * s;
  };
  ContentionReport r = diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.ranked[0].id, minimal.id());
  EXPECT_NEAR(static_cast<double>(r.ranked[0].loss_pkts), 200, 2);
}

TEST_F(ContentionUnit, NegativeInOutGrowthClampedToZero) {
  MinimalElement minimal;
  minimal.id_ = ElementId{"m0/draining"};
  PS_CHECK(agent_.add_element(&minimal).is_ok());
  controller_.register_stack_element(&agent_, minimal.id());
  auto* owned = element("m0/vm0/tun", ElementKind::kTun, 0);
  own(owned);

  // A draining queue emits more than it receives: not loss.
  minimal.in = 5000;
  advance_hook_ = [&](double s) { minimal.out += 1000 * s; };
  ContentionReport r = diagnose();
  EXPECT_FALSE(r.problem_found);
}

}  // namespace
}  // namespace perfsight
