// Controller scatter-gather: every multi-element query path must produce
// byte-identical output whether it runs as the sequential per-element loop
// (the oracle), as per-agent batches merged inline, or fanned out over a
// thread pool of any size — with or without the wire-codec loopback, and
// under a seeded fault plan.  Plus the cost-bookkeeping fix (mutex instead
// of torn atomics) and a TSan churn target for the shared pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/faults.h"
#include "perfsight/monitor.h"
#include "perfsight/rootcause.h"
#include "perfsight/trace.h"

namespace perfsight {
namespace {

// A scriptable element whose counters the rig moves as time advances.
class ScriptedSource : public StatsSource {
 public:
  ScriptedSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs;
    return r;
  }

  std::vector<Attr> attrs;

 private:
  ElementId id_;
  ChannelKind kind_;
};

// A multi-agent cluster driven by a manual clock: `agents` machines, each
// hosting `per_agent` packet-path elements (Algorithm 1 food) plus one
// middlebox, the middleboxes chained across machines (Algorithm 2 food).
class ScatterRig {
 public:
  ScatterRig(size_t agents, size_t per_agent)
      : controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }) {
    const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                                 ChannelKind::kNetDeviceFile,
                                 ChannelKind::kOvsChannel};
    for (size_t a = 0; a < agents; ++a) {
      agents_.push_back(
          std::make_unique<Agent>("agent-" + std::to_string(a), a + 1));
      Agent* agent = agents_.back().get();
      controller_.register_agent(agent);
      for (size_t e = 0; e < per_agent; ++e) {
        const size_t i = a * per_agent + e;
        auto s = std::make_unique<ScriptedSource>(
            "a" + std::to_string(a) + "/el" + std::to_string(e),
            kinds[i % 4]);
        s->attrs = {{attr::kRxPkts, static_cast<double>(1000 * i)},
                    {attr::kTxPkts, static_cast<double>(900 * i)},
                    {attr::kDropPkts, static_cast<double>(10 * i)},
                    {attr::kTxBytes, static_cast<double>(150000 * (i + 1))},
                    {attr::kType,
                     static_cast<double>(static_cast<int>(ElementKind::kTun))},
                    {attr::kVm, static_cast<double>(i % 3)}};
        EXPECT_TRUE(agent->add_element(s.get()).is_ok());
        EXPECT_TRUE(
            controller_.register_element(tenant_, s->id(), agent).is_ok());
        controller_.register_stack_element(agent, s->id());
        elements_.push_back(s->id());
        sources_.push_back(std::move(s));
      }
      auto mb = std::make_unique<ScriptedSource>("mb" + std::to_string(a),
                                                 ChannelKind::kMbSocket);
      mb->attrs = {{attr::kInBytes, 0},
                   {attr::kInTimeNs, 0},
                   {attr::kOutBytes, 0},
                   {attr::kOutTimeNs, 0},
                   {attr::kCapacityMbps, 1000}};
      EXPECT_TRUE(agent->add_element(mb.get()).is_ok());
      EXPECT_TRUE(
          controller_.register_element(tenant_, mb->id(), agent).is_ok());
      controller_.register_middlebox(tenant_, mb->id());
      if (a > 0) {
        controller_.add_chain_edge(tenant_, mbs_.back()->id(), mb->id());
      }
      mbs_.push_back(mb.get());
      sources_.push_back(std::move(mb));
    }
  }

  SimTime advance(Duration d) {
    now_ = now_ + d;
    const double dt_sec = d.sec();
    size_t i = 0;
    for (auto& s : sources_) {
      for (Attr& a : s->attrs) {
        if (a.name == attr::kRxPkts) a.value += (1000 + i) * dt_sec;
        if (a.name == attr::kTxPkts) a.value += (900 + i) * dt_sec;
        if (a.name == attr::kDropPkts) a.value += (3 + i % 5) * dt_sec;
        if (a.name == attr::kTxBytes) a.value += 150000 * dt_sec;
      }
      ++i;
    }
    // Middlebox chain: mb0 moves at full capacity, later boxes slower and
    // slower — a classic overloaded-box signature for Algorithm 2.
    for (size_t m = 0; m < mbs_.size(); ++m) {
      const double mbps = 1000.0 / (m + 1);
      for (Attr& a : mbs_[m]->attrs) {
        if (a.name == attr::kInBytes || a.name == attr::kOutBytes) {
          a.value += mbps * 1e6 / 8 * dt_sec;
        }
        if (a.name == attr::kInTimeNs || a.name == attr::kOutTimeNs) {
          a.value += static_cast<double>(d.ns());
        }
      }
    }
    return now_;
  }

  void install_faults(const FaultPlan* plan, const RetryPolicy& retry) {
    for (auto& a : agents_) {
      a->set_fault_plan(plan);
      a->set_retry_policy(retry);
    }
  }

  SimTime now_;
  Controller controller_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<std::unique_ptr<ScriptedSource>> sources_;
  std::vector<ScriptedSource*> mbs_;
  std::vector<ElementId> elements_;  // packet-path elements, creation order
  const TenantId tenant_{1};
};

std::string fmt(const Result<Controller::QualifiedRecord>& r) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  return "OK " + to_wire(r.value().record) + " q=" +
         to_string(r.value().quality) + "\n";
}

template <typename T>
std::string fmt_val(const Result<T>& r, DataQuality q) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  std::string v;
  if constexpr (std::is_same_v<T, DataRate>) {
    v = std::to_string(r.value().bits_per_sec());
  } else {
    v = std::to_string(r.value());
  }
  return "OK " + v + " q=" + to_string(q) + "\n";
}

// Runs the full diagnosis workload once and folds every output into one
// string: the sequential run of this script is the oracle the pooled /
// wire-looped runs must reproduce byte-for-byte.
std::string run_script(ScatterRig& rig, ThreadPool* pool, bool batching,
                       bool wire_loopback) {
  Controller& c = rig.controller_;
  c.set_pool(pool);
  c.set_batching(batching);
  c.set_wire_loopback(wire_loopback);

  std::string out;

  // GetAttr fan-in over every tenant element, plus an id no agent serves.
  std::vector<ElementId> ids = c.elements_of(rig.tenant_);
  ids.push_back(ElementId{"ghost"});
  for (const auto& r : c.get_attr_many(
           rig.tenant_, ids,
           {attr::kRxPkts, attr::kTxPkts, attr::kDropPkts, attr::kType,
            attr::kVm})) {
    out += fmt(r);
  }

  // Single-element path (also exercises the shared cost accounting).
  out += fmt(c.get_attr_q(rig.tenant_, rig.elements_.front(),
                          {attr::kRxPkts, attr::kTxPkts}));

  // Interval fan-ins: one shared window advance per utility.
  const std::vector<ElementId>& els = rig.elements_;
  std::vector<DataQuality> q;
  std::vector<Result<DataRate>> thr =
      c.get_throughput_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < thr.size(); ++i) out += fmt_val(thr[i], q[i]);
  std::vector<Result<int64_t>> loss =
      c.get_pkt_loss_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < loss.size(); ++i) out += fmt_val(loss[i], q[i]);
  std::vector<Result<double>> aps =
      c.get_avg_pkt_size_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < aps.size(); ++i) out += fmt_val(aps[i], q[i]);

  // Algorithm 1 over the stack scan set.
  ContentionDetector det(&c, RuleBook::standard());
  det.set_pool(pool);
  out += to_text(det.diagnose(rig.tenant_, Duration::millis(100)));

  // Algorithm 2 over the middlebox chain.
  RootCauseAnalyzer rca(&c);
  out += to_text(rca.analyze(rig.tenant_, Duration::millis(100)));

  // Alert-driven diagnosis: sample the monitor, then evaluate rules (the
  // breach scan rides the pool; firings run Algorithm 1/2 via the batch
  // path).
  Monitor mon(&c, rig.tenant_);
  mon.watch(rig.elements_.front(), attr::kDropPkts);
  mon.watch(rig.mbs_.front()->id(), attr::kInBytes);
  AlertWatcher watcher(&mon, &det, &rca);
  watcher.set_pool(pool);
  watcher.add_rule({"drops-any", rig.elements_.front(), attr::kDropPkts,
                    /*on_rate=*/false, /*threshold=*/1.0,
                    AlertRule::Action::kContention, Duration::millis(50),
                    Duration::seconds(1)});
  watcher.add_rule({"mb-busy", rig.mbs_.front()->id(), attr::kInBytes,
                    /*on_rate=*/false, /*threshold=*/1.0,
                    AlertRule::Action::kRootCause, Duration::millis(50),
                    Duration::seconds(1)});
  mon.sample();
  for (const Alert& a : watcher.check()) out += to_text(a);

  return out;
}

TEST(ScatterDifferentialTest, PooledPathsMatchSequentialOracle) {
  ScatterRig oracle_rig(4, 4);
  const std::string oracle =
      run_script(oracle_rig, nullptr, /*batching=*/false, false);
  ASSERT_NE(oracle.find("=== Algorithm 1"), std::string::npos);
  ASSERT_NE(oracle.find("=== Algorithm 2"), std::string::npos);
  ASSERT_NE(oracle.find("ALERT ["), std::string::npos);
  ASSERT_NE(oracle.find("ERR(1) no agent serves element ghost"),
            std::string::npos);

  // Batched but inline (no pool).
  {
    ScatterRig rig(4, 4);
    EXPECT_EQ(run_script(rig, nullptr, true, false), oracle);
  }
  // Batched over pools of 1, 2 and 8 workers.
  for (size_t workers : {1u, 2u, 8u}) {
    ScatterRig rig(4, 4);
    ThreadPool pool(workers);
    EXPECT_EQ(run_script(rig, &pool, true, false), oracle)
        << "divergence at pool size " << workers;
  }
}

TEST(ScatterDifferentialTest, WireLoopbackIsTransparent) {
  ScatterRig plain_rig(3, 3);
  ThreadPool plain_pool(4);
  const std::string plain = run_script(plain_rig, &plain_pool, true, false);

  ScatterRig looped_rig(3, 3);
  ThreadPool looped_pool(4);
  EXPECT_EQ(run_script(looped_rig, &looped_pool, true, true), plain);
}

TEST(ScatterDifferentialTest, FaultPlanPreservesDifferential) {
  // Unbounded element budget: with a budget, backoff jitter (an RNG draw
  // whose order differs between the paths) could flip an element's success
  // into a deadline failure.  Everything else about an outcome is a pure
  // function of (seed, element, kind, time, attempt).
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.attempt_timeout = Duration::millis(1);

  auto make_plan = [] {
    FaultPlan plan(99);
    ChannelFaultSpec spec;
    spec.transient_p = 0.10;
    spec.timeout_p = 0.05;
    spec.stale_p = 0.10;
    spec.torn_p = 0.10;
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      plan.set_channel_faults(static_cast<ChannelKind>(k), spec);
    }
    plan.set_timeout_spike(Duration::millis(5));
    plan.schedule_crash("agent-1", SimTime::millis(150));
    return plan;
  };

  ScatterRig oracle_rig(4, 4);
  FaultPlan oracle_plan = make_plan();
  oracle_rig.install_faults(&oracle_plan, retry);
  const std::string oracle = run_script(oracle_rig, nullptr, false, false);
  // The plan must actually bite for the differential to mean anything.
  ASSERT_TRUE(oracle.find("q=stale") != std::string::npos ||
              oracle.find("q=torn") != std::string::npos ||
              oracle.find("ERR(3)") != std::string::npos ||
              oracle.find("ERR(5)") != std::string::npos)
      << "fault plan produced no degradation; differential is vacuous";

  for (size_t workers : {1u, 2u, 8u}) {
    ScatterRig rig(4, 4);
    FaultPlan plan = make_plan();
    rig.install_faults(&plan, retry);
    ThreadPool pool(workers);
    EXPECT_EQ(run_script(rig, &pool, true, false), oracle)
        << "fault differential divergence at pool size " << workers;
  }
  // And with the wire loopback on top.
  {
    ScatterRig rig(4, 4);
    FaultPlan plan = make_plan();
    rig.install_faults(&plan, retry);
    ThreadPool pool(4);
    EXPECT_EQ(run_script(rig, &pool, true, true), oracle);
  }
}

TEST(ScatterObservabilityTest, ScatterEmitsTraceEventsAndMetrics) {
  ScopedTraceRecorder scoped;
  ScatterRig rig(2, 3);
  MetricsRegistry reg;
  rig.controller_.set_metrics(&reg);
  ThreadPool pool(2);
  rig.controller_.set_pool(&pool);

  std::vector<ElementId> ids = rig.controller_.elements_of(rig.tenant_);
  auto got = rig.controller_.get_attr_many(rig.tenant_, ids,
                                           {attr::kRxPkts});
  ASSERT_EQ(got.size(), ids.size());

  size_t scatters = 0, gathers = 0;
  for (const TraceEvent& e :
       scoped.recorder().events_for(ElementId{"controller"})) {
    if (e.kind == TraceEventKind::kControllerScatter) {
      ++scatters;
      EXPECT_EQ(e.value, static_cast<double>(ids.size()));
    }
    if (e.kind == TraceEventKind::kControllerGather) {
      ++gathers;
      EXPECT_EQ(e.value, static_cast<double>(ids.size()));
    }
  }
  EXPECT_EQ(scatters, 1u);
  EXPECT_EQ(gathers, 1u);
  EXPECT_STREQ(to_string(TraceEventKind::kControllerScatter),
               "controller_scatter");
  EXPECT_STREQ(to_string(TraceEventKind::kControllerGather),
               "controller_gather");

  std::string exposed = reg.expose(rig.now_);
  EXPECT_NE(exposed.find("perfsight_controller_batch_scatters_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("perfsight_controller_batch_agents_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("perfsight_controller_batch_channel_seconds"),
            std::string::npos);
  EXPECT_NE(exposed.find("path=\"batch\""), std::string::npos);
}

TEST(ScatterCostTest, BatchingAmortizesChannelTimeWithoutChangingResults) {
  ScatterRig seq_rig(4, 6), bat_rig(4, 6);
  std::vector<ElementId> ids =
      seq_rig.controller_.elements_of(seq_rig.tenant_);

  seq_rig.controller_.set_batching(false);
  auto seq = seq_rig.controller_.get_attr_many(seq_rig.tenant_, ids,
                                               {attr::kRxPkts});
  auto bat = bat_rig.controller_.get_attr_many(bat_rig.tenant_, ids,
                                               {attr::kRxPkts});
  ASSERT_EQ(seq.size(), bat.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok());
    ASSERT_TRUE(bat[i].ok());
    EXPECT_EQ(to_wire(seq[i].value().record), to_wire(bat[i].value().record));
  }

  // Identical query tallies, strictly cheaper channel bill: the batch pays
  // one round trip per channel kind per agent, the loop one per element.
  Controller::CostSnapshot sc = seq_rig.controller_.cost();
  Controller::CostSnapshot bc = bat_rig.controller_.cost();
  EXPECT_EQ(sc.queries, ids.size());
  EXPECT_EQ(bc.queries, ids.size());
  EXPECT_LT(bc.channel_time.ns(), sc.channel_time.ns());
  EXPECT_GT(bc.channel_time.ns(), 0);
  // Accessors read through the same snapshot.
  EXPECT_EQ(bat_rig.controller_.queries_issued(), bc.queries);
  EXPECT_EQ(bat_rig.controller_.channel_time().ns(), bc.channel_time.ns());
}

// TSan target: concurrent get_attr_q / get_attr_many callers racing agent
// poll sweeps over one shared pool, with an AlertWatcher evaluating on the
// main thread — the cost bookkeeping (a const-method mutation) must be
// properly synchronized, not sneaked through a const hole.
TEST(ScatterChurnTest, ConcurrentScatterPollAndAlertEvaluation) {
  std::atomic<int64_t> clock_ns{0};
  Controller controller(
      [&clock_ns](Duration d) {
        return SimTime::nanos(clock_ns.fetch_add(d.ns()) + d.ns());
      },
      [&clock_ns] { return SimTime::nanos(clock_ns.load()); });

  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<std::unique_ptr<ScriptedSource>> sources;
  std::vector<ElementId> ids;
  const TenantId tenant{1};
  for (size_t a = 0; a < 3; ++a) {
    agents.push_back(std::make_unique<Agent>("agent-" + std::to_string(a)));
    controller.register_agent(agents.back().get());
    for (size_t e = 0; e < 4; ++e) {
      auto s = std::make_unique<ScriptedSource>(
          "a" + std::to_string(a) + "/el" + std::to_string(e),
          e % 2 == 0 ? ChannelKind::kProcFs : ChannelKind::kMbSocket);
      s->attrs = {{attr::kRxPkts, 100.0 * e}, {attr::kDropPkts, 5.0 * e}};
      ASSERT_TRUE(agents.back()->add_element(s.get()).is_ok());
      ASSERT_TRUE(
          controller.register_element(tenant, s->id(), agents.back().get())
              .is_ok());
      ids.push_back(s->id());
      sources.push_back(std::move(s));
    }
  }

  ThreadPool pool(4);
  controller.set_pool(&pool);
  MetricsRegistry reg;
  controller.set_metrics(&reg);

  Monitor mon(&controller, tenant);
  mon.watch(ids.front(), attr::kDropPkts);
  ContentionDetector det(&controller, RuleBook::standard());
  AlertWatcher watcher(&mon, &det, nullptr);
  watcher.set_pool(&pool);
  // Action kNone: rule evaluation must not advance time (this test never
  // mutates the sources, so there is no cross-thread write to them).
  watcher.add_rule({"drops", ids.front(), attr::kDropPkts, /*on_rate=*/false,
                    /*threshold=*/0.0, AlertRule::Action::kNone,
                    Duration::millis(1), Duration::nanos(1)});

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto got = controller.get_attr_many(tenant, ids, {attr::kRxPkts});
      EXPECT_EQ(got.size(), ids.size());
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)controller.get_attr_q(tenant, ids.back(), {attr::kDropPkts});
      (void)controller.cost();
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& a : agents) {
        (void)a->poll_all(SimTime::nanos(clock_ns.load()), &pool);
      }
    }
  });

  for (int round = 0; round < 50; ++round) {
    clock_ns.fetch_add(Duration::millis(1).ns());
    mon.sample();
    (void)watcher.check();
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  Controller::CostSnapshot cost = controller.cost();
  EXPECT_GT(cost.queries, 0u);
  EXPECT_GT(cost.channel_time.ns(), 0);
  EXPECT_FALSE(watcher.history().empty());
}

}  // namespace
}  // namespace perfsight
