// Deployment / controller integration: tenant isolation, multi-agent
// resolution, registration error paths, and the controller's view of
// chains spanning machines.
#include "cluster/deployment.h"

#include <gtest/gtest.h>

#include "cluster/fabric.h"
#include "mbox/presets.h"
#include "sim/simulator.h"

namespace perfsight::cluster {
namespace {

using namespace literals;

TEST(DeploymentTest, AssignRejectsUnknownElement) {
  sim::Simulator sim(Duration::millis(1));
  Deployment dep(&sim);
  Agent* a = dep.add_agent("a0");
  Status st = dep.assign(TenantId{1}, ElementId{"ghost"}, a);
  EXPECT_FALSE(st.is_ok());
}

TEST(DeploymentTest, ControllerAdvanceDrivesSimulator) {
  sim::Simulator sim(Duration::millis(1));
  Deployment dep(&sim);
  SimTime before = sim.now();
  dep.controller()->advance(Duration::millis(250));
  EXPECT_EQ((sim.now() - before).ms(), 250.0);
  EXPECT_EQ(dep.controller()->now().ns(), sim.now().ns());
}

TEST(DeploymentTest, TenantsSeeOnlyTheirElements) {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  Deployment dep(&sim);
  int v0 = m.add_vm({"vm0", 1.0});
  int v1 = m.add_vm({"vm1", 1.0});
  Agent* a = dep.add_agent("a0");
  dep.attach(&m, a);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(v0)->id(), a).is_ok());
  PS_CHECK(dep.assign(TenantId{2}, m.tun(v1)->id(), a).is_ok());

  auto t1 = dep.controller()->elements_of(TenantId{1});
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0], m.tun(v0)->id());
  auto t2 = dep.controller()->elements_of(TenantId{2});
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t2[0], m.tun(v1)->id());
  EXPECT_TRUE(dep.controller()->elements_of(TenantId{99}).empty());
}

TEST(DeploymentTest, StackScanCoversOnlyHostingMachines) {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m0("m0", dp::StackParams{}, &sim);
  vm::PhysicalMachine m1("m1", dp::StackParams{}, &sim);
  Deployment dep(&sim);
  m0.add_vm({"vm0", 1.0});
  m1.add_vm({"vm0", 1.0});
  Agent* a0 = dep.add_agent("a0");
  Agent* a1 = dep.add_agent("a1");
  dep.attach(&m0, a0);
  dep.attach(&m1, a1);
  // Tenant 1 lives only on m0.
  PS_CHECK(dep.assign(TenantId{1}, m0.tun(0)->id(), a0).is_ok());

  auto scan = dep.controller()->stack_elements_for(TenantId{1});
  ASSERT_FALSE(scan.empty());
  for (const ElementId& id : scan) {
    EXPECT_EQ(id.name.substr(0, 3), "m0/") << id.name;
  }
}

TEST(DeploymentTest, CrossAgentElementResolution) {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m0("m0", dp::StackParams{}, &sim);
  vm::PhysicalMachine m1("m1", dp::StackParams{}, &sim);
  Deployment dep(&sim);
  m0.add_vm({"vm0", 1.0});
  m1.add_vm({"vm0", 1.0});
  Agent* a0 = dep.add_agent("a0");
  Agent* a1 = dep.add_agent("a1");
  dep.attach(&m0, a0);
  dep.attach(&m1, a1);
  PS_CHECK(dep.assign(TenantId{1}, m0.tun(0)->id(), a0).is_ok());
  PS_CHECK(dep.assign(TenantId{1}, m1.tun(0)->id(), a1).is_ok());

  // get_attr resolves to the right agent for each machine's element.
  auto r0 = dep.controller()->get_attr(TenantId{1}, m0.tun(0)->id(),
                                       {attr::kRxPkts});
  auto r1 = dep.controller()->get_attr(TenantId{1}, m1.tun(0)->id(),
                                       {attr::kRxPkts});
  EXPECT_TRUE(r0.ok());
  EXPECT_TRUE(r1.ok());
  // A shared stack element resolves even without tenant ownership.
  auto rs = dep.controller()->get_attr(TenantId{1}, m1.pnic()->id(),
                                       {attr::kCapacityMbps});
  EXPECT_TRUE(rs.ok());
  // Unknown elements fail cleanly.
  EXPECT_FALSE(dep.controller()
                   ->get_attr(TenantId{1}, ElementId{"m7/pnic"}, {"x"})
                   .ok());
}

TEST(DeploymentTest, StreamChainRegistrationBuildsTopology) {
  sim::Simulator sim(Duration::millis(1));
  mbox::StreamMachine m(mbox::StreamMachineConfig{"m0", 8, 25e9, 16}, &sim);
  Deployment dep(&sim);
  auto vm = [&](const char* n) {
    mbox::StreamVmConfig cfg;
    cfg.name = n;
    cfg.vnic = 100_mbps;
    return m.add_vm(cfg);
  };
  auto* va = vm("a");
  auto* vb = vm("b");
  auto* c = m.connect(va, vb, {"a-b"});
  auto* src = m.add_app(va, "src", mbox::presets::client(50_mbps));
  src->add_output(c, 1.0);
  auto* dst = m.add_app(vb, "dst", mbox::presets::server(1_gbps));
  dst->add_input(c);
  Agent* a = dep.add_agent("a0");
  dep.attach(&m, a);
  PS_CHECK(dep.add_middlebox(TenantId{1}, src, a).is_ok());
  PS_CHECK(dep.add_middlebox(TenantId{1}, dst, a).is_ok());
  dep.chain(TenantId{1}, src, dst);

  EXPECT_EQ(dep.controller()->middleboxes(TenantId{1}).size(), 2u);
  EXPECT_TRUE(
      dep.controller()->chain(TenantId{1}).successors(src->id()).count(
          dst->id()));
  // Middlebox registration implies element assignment (get_attr works).
  auto r = dep.controller()->get_attr(TenantId{1}, dst->id(),
                                      {attr::kCapacityMbps});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get(attr::kCapacityMbps), 100.0);
}

TEST(DeploymentTest, DuplicateMiddleboxRegistrationFails) {
  sim::Simulator sim(Duration::millis(1));
  mbox::StreamMachine m(mbox::StreamMachineConfig{"m0", 8, 25e9, 16}, &sim);
  Deployment dep(&sim);
  mbox::StreamVmConfig cfg;
  cfg.name = "a";
  auto* va = m.add_vm(cfg);
  auto* app = m.add_app(va, "app", mbox::presets::server(1_gbps));
  Agent* a0 = dep.add_agent("a0");
  Agent* a1 = dep.add_agent("a1");
  dep.attach(&m, a0);
  // Registering with an agent that does not serve the element fails.
  EXPECT_FALSE(dep.add_middlebox(TenantId{1}, app, a1).is_ok());
  EXPECT_TRUE(dep.add_middlebox(TenantId{1}, app, a0).is_ok());
}

}  // namespace
}  // namespace perfsight::cluster
