// Integration tests of the two diagnostic applications against full
// scenarios: Algorithm 1 (contention / bottleneck, rule book) on the
// packet-path machine, Algorithm 2 (root cause in a chain) on the stream
// chains of Fig. 12, and the multi-tenant operator workflow of Fig. 13/14.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/deployment.h"
#include "cluster/scenarios.h"
#include "perfsight/contention.h"
#include "perfsight/rootcause.h"

namespace perfsight {
namespace {

using namespace literals;
using cluster::Deployment;
using cluster::MultiTenantScenario;
using cluster::PropagationScenario;

bool has_resource(const std::vector<ResourceKind>& v, ResourceKind r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

// --- Algorithm 1 over the packet path --------------------------------------

struct PacketRig {
  sim::Simulator sim{Duration::millis(1)};
  std::unique_ptr<vm::PhysicalMachine> machine;
  std::unique_ptr<Deployment> deployment;
  static constexpr TenantId kTenant{1};

  explicit PacketRig(dp::StackParams params = {}) {
    machine = std::make_unique<vm::PhysicalMachine>("m0", params, &sim);
    deployment = std::make_unique<Deployment>(&sim);
  }

  // Call once the topology is built.
  void wire_perfsight() {
    Agent* agent = deployment->add_agent("agent-m0");
    deployment->attach(machine.get(), agent);
    // Tenant owns one element so the controller can find the machine.
    PS_CHECK(
        deployment->assign(kTenant, machine->tun(0)->id(), agent).is_ok());
  }

  ContentionReport diagnose() {
    ContentionDetector detector(deployment->controller(),
                                RuleBook::standard());
    detector.set_loss_threshold(50);
    return detector.diagnose(kTenant, Duration::seconds(1.0),
                             machine->aux_signals());
  }
};

FlowSpec flow(uint32_t id, uint32_t pkt_size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.packet_size = pkt_size;
  return f;
}

TEST(Algorithm1Test, HealthySystemReportsNothing) {
  PacketRig rig;
  int v = rig.machine->add_vm({"vm0", 1.0});
  rig.machine->set_sink_app(v);
  FlowSpec f = flow(1);
  rig.machine->route_flow_to_vm(f, v);
  rig.machine->add_ingress_source("s", f, 500_mbps);
  rig.wire_perfsight();
  rig.sim.run_for(2_s);

  ContentionReport r = rig.diagnose();
  EXPECT_FALSE(r.problem_found);
}

TEST(Algorithm1Test, IncomingOverloadBlamesPNicAndBandwidth) {
  PacketRig rig;
  for (int i = 0; i < 2; ++i) {
    int v = rig.machine->add_vm({"vm" + std::to_string(i), 1.0});
    rig.machine->set_sink_app(v);
    FlowSpec f = flow(i + 1);
    rig.machine->route_flow_to_vm(f, i);
    rig.machine->add_ingress_source("s" + std::to_string(i), f, 7_gbps);
  }
  rig.wire_perfsight();
  rig.sim.run_for(2_s);

  ContentionReport r = rig.diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kPNic);
  EXPECT_TRUE(r.is_contention);
  EXPECT_TRUE(
      has_resource(r.candidate_resources, ResourceKind::kIncomingBandwidth));
}

TEST(Algorithm1Test, VmBottleneckClassifiedSingleVm) {
  PacketRig rig;
  int victim = rig.machine->add_vm({"vm0", 1.0});
  int healthy = rig.machine->add_vm({"vm1", 1.0});
  rig.machine->set_sink_app(victim);
  rig.machine->set_sink_app(healthy);
  FlowSpec fv = flow(1), fh = flow(2);
  rig.machine->route_flow_to_vm(fv, victim);
  rig.machine->route_flow_to_vm(fh, healthy);
  rig.machine->add_ingress_source("sv", fv, 500_mbps);
  rig.machine->add_ingress_source("sh", fh, 500_mbps);
  rig.machine->add_vm_cpu_hog(victim)->set_demand_cores(1.0);
  rig.wire_perfsight();
  rig.sim.run_for(2_s);

  ContentionReport r = rig.diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kTun);
  EXPECT_EQ(r.spread, LossSpread::kSingleVm);
  EXPECT_FALSE(r.is_contention);  // bottleneck, not contention
  ASSERT_EQ(r.candidate_resources.size(), 1u);
  EXPECT_EQ(r.candidate_resources[0], ResourceKind::kVmLocal);
  EXPECT_EQ(r.affected_vms, std::vector<int>{victim});
}

TEST(Algorithm1Test, MemoryContentionBlamesMembusAcrossVms) {
  PacketRig rig;
  for (int i = 0; i < 2; ++i) {
    int v = rig.machine->add_vm({"vm" + std::to_string(i), 1.0});
    rig.machine->set_sink_app(v);
    FlowSpec f = flow(i + 1);
    rig.machine->route_flow_to_vm(f, i);
    rig.machine->add_ingress_source("s" + std::to_string(i), f,
                                    DataRate::gbps(1.6));
  }
  rig.machine->add_mem_hog("hog")->set_demand_bytes_per_sec(24e9);
  rig.wire_perfsight();
  rig.sim.run_for(3_s);

  ContentionReport r = rig.diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kTun);
  EXPECT_EQ(r.spread, LossSpread::kMultiVm);
  EXPECT_TRUE(r.is_contention);
  // Aux signals (CPU not hot, NIC not saturated) leave memory bandwidth.
  EXPECT_TRUE(
      has_resource(r.candidate_resources, ResourceKind::kMemoryBandwidth));
  EXPECT_FALSE(has_resource(r.candidate_resources, ResourceKind::kCpu));
}

TEST(Algorithm1Test, SmallPacketFloodBlamesBacklog) {
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  params.softirq_cost_per_pkt = 3.2e-6;
  params.qemu_cost_per_pkt = 0.25e-6;
  PacketRig rig(params);
  int rx_vm = rig.machine->add_vm({"vm0", 1.0});
  int flood_vm = rig.machine->add_vm({"vm1", 1.0});
  rig.machine->set_sink_app(rx_vm);
  FlowSpec fin = flow(1);
  rig.machine->route_flow_to_vm(fin, rx_vm);
  rig.machine->add_ingress_source("rx", fin, 500_mbps);
  FlowSpec fl = flow(2, 64);
  dp::SourceApp::Config cfg;
  cfg.flow = fl;
  cfg.rate = 1_gbps;
  cfg.cost_per_pkt = 0.05e-6;
  rig.machine->set_source_app(flood_vm, cfg);
  rig.machine->route_flow_to_wire(fl.id, "flood");
  rig.machine->pin_flow_to_core(fin.id, 0);
  rig.machine->pin_flow_to_core(fl.id, 0);
  rig.wire_perfsight();
  rig.sim.run_for(2_s);

  ContentionReport r = rig.diagnose();
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kPCpuBacklog);
  EXPECT_EQ(r.spread, LossSpread::kSharedElement);
  EXPECT_TRUE(r.is_contention);
  EXPECT_TRUE(
      has_resource(r.candidate_resources, ResourceKind::kBacklogQueue));
}

// --- Algorithm 2 over stream chains (Fig. 12) --------------------------------

MbState state_of(const RootCauseReport& r, const mbox::StreamApp* app) {
  for (const MbObservation& o : r.observations) {
    if (o.id == app->id()) return o.state;
  }
  ADD_FAILURE() << "no observation for " << app->id().name;
  return MbState::kNormal;
}

TEST(Algorithm2Test, OverloadedServerIdentified) {
  PropagationScenario s(PropagationScenario::Case::kOverloadedServer);
  s.settle();
  RootCauseReport r = s.diagnose();

  EXPECT_EQ(state_of(r, s.lb), MbState::kWriteBlocked);
  EXPECT_EQ(state_of(r, s.cf1), MbState::kWriteBlocked);
  EXPECT_EQ(state_of(r, s.nfs), MbState::kReadBlocked);
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], s.server1->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kOverloaded);
}

TEST(Algorithm2Test, UnderloadedClientIdentified) {
  PropagationScenario s(PropagationScenario::Case::kUnderloadedClient);
  s.settle();
  RootCauseReport r = s.diagnose();

  EXPECT_EQ(state_of(r, s.lb), MbState::kReadBlocked);
  EXPECT_EQ(state_of(r, s.cf1), MbState::kReadBlocked);
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], s.client->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kUnderloaded);
}

TEST(Algorithm2Test, BuggyNfsIdentifiedThroughPropagation) {
  PropagationScenario s(PropagationScenario::Case::kBuggyNfs);
  s.settle(Duration::seconds(4.0));
  RootCauseReport r = s.diagnose();

  EXPECT_EQ(state_of(r, s.cf1), MbState::kWriteBlocked);
  EXPECT_EQ(state_of(r, s.lb), MbState::kWriteBlocked);
  EXPECT_EQ(state_of(r, s.server1), MbState::kReadBlocked);
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], s.nfs->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kOverloaded);
}

// --- Fig. 13/14 multi-tenant workflow ----------------------------------------

TEST(MultiTenantTest, BottleneckThenContentionThenScaleOut) {
  MultiTenantScenario s;
  const Duration phase = Duration::seconds(2.0);

  // Phase 1: tenant 2 capped by its LB's 200 Mbps processing capacity.
  s.sim().run_for(phase);
  s.tenant1_throughput(phase);  // reset counters
  s.tenant2_throughput(phase);
  s.sim().run_for(phase);
  double t1 = s.tenant1_throughput(phase).mbits_per_sec();
  double t2 = s.tenant2_throughput(phase).mbits_per_sec();
  EXPECT_NEAR(t1, 180, 20);
  EXPECT_NEAR(t2, 200, 25);
  // The LB2 VM's TUN is dropping (its app can't keep up).
  EXPECT_GT(s.lb2_vm->tun()->stats().drop_pkts.value(), 100u);

  // Phase 2: memory-intensive management task hurts both tenants.
  s.start_management_task(24.5e9);
  s.sim().run_for(phase);
  s.tenant1_throughput(phase);
  s.tenant2_throughput(phase);
  s.sim().run_for(phase);
  double t1_hog = s.tenant1_throughput(phase).mbits_per_sec();
  double t2_hog = s.tenant2_throughput(phase).mbits_per_sec();
  EXPECT_LT(t1_hog, 0.8 * t1);
  EXPECT_LT(t2_hog, 0.8 * t2);
  EXPECT_GT(s.lb1_vm->tun()->stats().drop_pkts.value(), 100u);

  // Phase 3: migrate the task away -> recovery.
  s.stop_management_task();
  s.sim().run_for(phase);
  s.tenant1_throughput(phase);
  s.tenant2_throughput(phase);
  s.sim().run_for(phase);
  EXPECT_NEAR(s.tenant1_throughput(phase).mbits_per_sec(), 180, 20);
  EXPECT_NEAR(s.tenant2_throughput(phase).mbits_per_sec(), 200, 25);

  // Phase 4: scale out tenant 2's LB -> full 360 Mbps.
  s.scale_out_tenant2();
  s.sim().run_for(phase);
  s.tenant1_throughput(phase);
  s.tenant2_throughput(phase);
  s.sim().run_for(phase);
  EXPECT_NEAR(s.tenant2_throughput(phase).mbits_per_sec(), 360, 40);
}

}  // namespace
}  // namespace perfsight
