// Element base class, queue elements (TUN, vNIC, guest buffers) and their
// PerfSight counter semantics.
#include "dataplane/element.h"

#include <gtest/gtest.h>

#include "dataplane/queues.h"

namespace perfsight::dp {
namespace {

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * size};
}

TEST(ChannelMappingTest, MatchesPaperImplementation) {
  // Sec. 6: net_device via file system, softnet via /proc, OVS control
  // channel, instrumented QEMU logs, middlebox sockets.
  EXPECT_EQ(channel_for(ElementKind::kPNic), ChannelKind::kNetDeviceFile);
  EXPECT_EQ(channel_for(ElementKind::kTun), ChannelKind::kNetDeviceFile);
  EXPECT_EQ(channel_for(ElementKind::kPCpuBacklog), ChannelKind::kProcFs);
  EXPECT_EQ(channel_for(ElementKind::kNapi), ChannelKind::kProcFs);
  EXPECT_EQ(channel_for(ElementKind::kVSwitch), ChannelKind::kOvsChannel);
  EXPECT_EQ(channel_for(ElementKind::kHypervisorIo), ChannelKind::kQemuLog);
  EXPECT_EQ(channel_for(ElementKind::kMiddleboxApp), ChannelKind::kMbSocket);
  EXPECT_EQ(channel_for(ElementKind::kVNic), ChannelKind::kGuestProc);
}

TEST(ElementTest, CollectExportsStandardAttrs) {
  Tun tun(ElementId{"m0/vm1/tun"}, /*vm=*/1, QueueCaps{100, UINT64_MAX});
  tun.accept(batch(1, 10));
  tun.fetch(4, UINT64_MAX);

  StatsRecord r = tun.collect(SimTime::millis(5));
  EXPECT_EQ(r.element.name, "m0/vm1/tun");
  EXPECT_EQ(r.timestamp.ns(), SimTime::millis(5).ns());
  EXPECT_EQ(r.get(attr::kRxPkts), 10.0);
  EXPECT_EQ(r.get(attr::kTxPkts), 4.0);
  EXPECT_EQ(r.get(attr::kDropPkts), 0.0);
  EXPECT_EQ(r.get(attr::kQueuePkts), 6.0);
  EXPECT_EQ(r.get(attr::kVm), 1.0);
  EXPECT_EQ(static_cast<ElementKind>(static_cast<int>(*r.get(attr::kType))),
            ElementKind::kTun);
}

TEST(QueueElementTest, DropsChargedToElement) {
  Tun tun(ElementId{"tun"}, 0, QueueCaps{10, UINT64_MAX});
  tun.accept(batch(1, 25));
  EXPECT_EQ(tun.stats().pkts_in.value(), 25u);
  EXPECT_EQ(tun.stats().drop_pkts.value(), 15u);
  EXPECT_EQ(tun.queued_packets(), 10u);
}

TEST(QueueElementTest, ByteCapRespected) {
  Tun tun(ElementId{"tun"}, 0, QueueCaps{UINT64_MAX, 15000});
  tun.accept(batch(1, 20));  // 30000 bytes offered
  EXPECT_EQ(tun.queued_bytes(), 15000u);
  EXPECT_EQ(tun.stats().drop_pkts.value(), 10u);
}

TEST(QueueElementTest, SetCapsShrinksFutureAdmissions) {
  Tun tun(ElementId{"tun"}, 0, QueueCaps{UINT64_MAX, 1 << 20});
  tun.accept(batch(1, 10));
  tun.set_caps(QueueCaps{UINT64_MAX, 4096});  // memory-pressure clamp
  tun.accept(batch(1, 10));
  // Existing content is not revoked, but no new packets fit.
  EXPECT_EQ(tun.queued_packets(), 10u);
  EXPECT_EQ(tun.stats().drop_pkts.value(), 10u);
}

TEST(QueueElementTest, FetchObservesBudgets) {
  Tun tun(ElementId{"tun"}, 0, QueueCaps{});
  tun.accept(batch(1, 100));
  PacketBatch out = tun.fetch(10, UINT64_MAX);
  EXPECT_EQ(out.packets, 10u);
  out = tun.fetch(UINT64_MAX, 1500 * 5);
  EXPECT_EQ(out.packets, 5u);
  EXPECT_EQ(tun.stats().pkts_out.value(), 15u);
}

TEST(VNicTest, IndependentRxTxRings) {
  VNic vnic(ElementId{"vnic"}, 0, /*ring_pkts=*/4);
  vnic.push_rx(batch(1, 3));
  vnic.push_tx(batch(2, 2));
  EXPECT_EQ(vnic.rx_queued_packets(), 3u);
  EXPECT_EQ(vnic.tx_queued_packets(), 2u);
  EXPECT_EQ(vnic.rx_space_packets(), 1u);

  PacketBatch rx = vnic.fetch_rx(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(rx.packets, 3u);
  EXPECT_EQ(rx.flow, FlowId{1});
  PacketBatch tx = vnic.fetch_tx(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(tx.packets, 2u);
  EXPECT_EQ(tx.flow, FlowId{2});
}

TEST(VNicTest, RingOverflowDrops) {
  VNic vnic(ElementId{"vnic"}, 0, 4);
  vnic.push_rx(batch(1, 10));
  EXPECT_EQ(vnic.rx_queued_packets(), 4u);
  EXPECT_EQ(vnic.stats().drop_pkts.value(), 6u);
  vnic.push_tx(batch(2, 10));
  EXPECT_EQ(vnic.tx_queued_packets(), 4u);
  EXPECT_EQ(vnic.stats().drop_pkts.value(), 12u);
}

TEST(VNicTest, TxQueuedBytesTracksSmallPackets) {
  VNic vnic(ElementId{"vnic"}, 0, 4096);
  vnic.push_tx(batch(1, 100, /*size=*/64));
  EXPECT_EQ(vnic.tx_queued_bytes(), 6400u);
}

TEST(GuestSocketTest, ByteBounded) {
  GuestSocket sock(ElementId{"sock"}, 0, /*bytes=*/4500);
  sock.accept(batch(1, 5));  // 7500 bytes
  EXPECT_EQ(sock.queued_packets(), 3u);
  EXPECT_EQ(sock.stats().drop_pkts.value(), 2u);
}

TEST(GuestBacklogTest, PacketBounded) {
  GuestBacklog bl(ElementId{"gb"}, 0, /*pkts=*/300);
  bl.accept(batch(1, 400));
  EXPECT_EQ(bl.queued_packets(), 300u);
  EXPECT_EQ(bl.space_packets(), 0u);
  EXPECT_EQ(bl.stats().drop_pkts.value(), 100u);
}

TEST(ElementTest, IoTimeCountersExported) {
  Tun tun(ElementId{"tun"}, 0, QueueCaps{});
  StatsRecord r = tun.collect(SimTime{});
  EXPECT_EQ(r.get(attr::kInTimeNs), 0.0);
  EXPECT_EQ(r.get(attr::kOutTimeNs), 0.0);
}

}  // namespace
}  // namespace perfsight::dp
