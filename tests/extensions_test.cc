// Operator-extension features layered on the core framework: packet-size
// distribution tracking (§4.1's example of a richer statistic), the
// time-series Monitor, and the remediation advisor.
#include <gtest/gtest.h>

#include "dataplane/queues.h"
#include "perfsight/histogram.h"
#include "perfsight/monitor.h"
#include "perfsight/remediation.h"
#include "cluster/deployment.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight {
namespace {

using namespace literals;

// --- PacketSizeHistogram -----------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(PacketSizeHistogram::bucket_for(1), 0u);
  EXPECT_EQ(PacketSizeHistogram::bucket_for(64), 0u);
  EXPECT_EQ(PacketSizeHistogram::bucket_for(65), 1u);
  EXPECT_EQ(PacketSizeHistogram::bucket_for(1500), 5u);
  EXPECT_EQ(PacketSizeHistogram::bucket_for(1514), 5u);
  EXPECT_EQ(PacketSizeHistogram::bucket_for(9001), 8u);  // jumbo overflow
}

TEST(HistogramTest, RecordAndTotal) {
  PacketSizeHistogram h;
  h.record(64, 10);
  h.record(1500, 5);
  h.record(9500);
  EXPECT_EQ(h.total(), 16u);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.count(5), 5u);
  EXPECT_EQ(h.count(8), 1u);
}

TEST(HistogramTest, Labels) {
  EXPECT_EQ(PacketSizeHistogram::label(0), "0-64");
  EXPECT_EQ(PacketSizeHistogram::label(1), "65-128");
  EXPECT_EQ(PacketSizeHistogram::label(8), "9001+");
}

TEST(HistogramTest, ApproxQuantile) {
  PacketSizeHistogram h;
  h.record(64, 90);
  h.record(1500, 10);
  EXPECT_EQ(h.approx_quantile(0.5), 64u);
  EXPECT_EQ(h.approx_quantile(0.95), 1514u);
  PacketSizeHistogram empty;
  EXPECT_EQ(empty.approx_quantile(0.5), 0u);
}

TEST(HistogramTest, ApproxQuantileEdgesAndJumboBucket) {
  PacketSizeHistogram h;
  h.record(64, 90);
  h.record(1500, 10);
  // q=0 picks the first non-empty bucket; q=1 the last non-empty one (the
  // old floor/strictly-greater walk fell off the end and reported 9000).
  EXPECT_EQ(h.approx_quantile(0.0), 64u);
  EXPECT_EQ(h.approx_quantile(1.0), 1514u);

  // A jumbo-only distribution reports the open bucket's own representative,
  // not the 9000-byte bound of the previous bucket.
  PacketSizeHistogram jumbo;
  jumbo.record(9500, 100);
  EXPECT_EQ(PacketSizeHistogram::kOpenBucketSize, 9001u);
  EXPECT_EQ(jumbo.approx_quantile(0.0), 9001u);
  EXPECT_EQ(jumbo.approx_quantile(0.5), 9001u);
  EXPECT_EQ(jumbo.approx_quantile(1.0), 9001u);

  // Mixed tail: p99 of mostly-jumbo traffic must land in the jumbo bucket.
  PacketSizeHistogram mixed;
  mixed.record(64, 5);
  mixed.record(9500, 95);
  EXPECT_EQ(mixed.approx_quantile(0.99), 9001u);
  EXPECT_EQ(mixed.approx_quantile(0.01), 64u);
}

TEST(LatencyHistogramQuantileTest, TopQuantileDoesNotFallThrough) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.observe(2e-6);  // bucket le=4e-6
  // All mass in one low bucket: every quantile, including 1.0, reports that
  // bucket (the old walk returned the 4 s top bound for q=1.0).
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.0), 4e-6);
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(h.approx_quantile(1.0), 4e-6);
}

TEST(HistogramTest, ExportSkipsEmptyBuckets) {
  PacketSizeHistogram h;
  h.record(64, 3);
  StatsRecord r;
  h.export_attrs(r);
  ASSERT_EQ(r.attrs.size(), 1u);
  EXPECT_EQ(r.attrs[0].name, "sizeHist.0-64");
  EXPECT_EQ(r.attrs[0].value, 3.0);
}

TEST(HistogramTest, ElementOptInTracking) {
  dp::Tun tun(ElementId{"tun"}, 0, QueueCaps{});
  // Off by default: no histogram attrs.
  tun.accept(PacketBatch{FlowId{1}, 10, 640});
  StatsRecord off = tun.collect(SimTime{});
  EXPECT_FALSE(off.get("sizeHist.0-64").has_value());

  tun.enable_size_tracking();
  tun.accept(PacketBatch{FlowId{1}, 10, 640});    // 64 B packets
  tun.accept(PacketBatch{FlowId{2}, 4, 6000});    // 1500 B packets
  StatsRecord on = tun.collect(SimTime{});
  EXPECT_EQ(on.get("sizeHist.0-64"), 10.0);
  EXPECT_EQ(on.get("sizeHist.1025-1514"), 4.0);
}

// --- Monitor -------------------------------------------------------------------

struct MonitorRig {
  sim::Simulator sim{Duration::millis(1)};
  vm::PhysicalMachine machine{"m0", dp::StackParams{}, &sim};
  cluster::Deployment dep{&sim};
  static constexpr TenantId kTenant{1};

  MonitorRig() {
    int v = machine.add_vm({"vm0", 1.0});
    machine.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{1};
    f.packet_size = 1500;
    machine.route_flow_to_vm(f, v);
    machine.add_ingress_source("s", f, 500_mbps);
    Agent* agent = dep.add_agent("a0");
    dep.attach(&machine, agent);
    PS_CHECK(dep.assign(kTenant, machine.tun(0)->id(), agent).is_ok());
  }
};

TEST(MonitorTest, CollectsValueSeries) {
  MonitorRig rig;
  Monitor mon(rig.dep.controller(), MonitorRig::kTenant);
  mon.watch(rig.machine.tun(0)->id(), attr::kTxBytes);
  for (int i = 0; i < 5; ++i) {
    rig.sim.run_for(Duration::millis(500));
    mon.sample();
  }
  const auto& series = mon.values(rig.machine.tun(0)->id(), attr::kTxBytes);
  ASSERT_EQ(series.points.size(), 5u);
  // Counter is monotone.
  for (size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GE(series.points[i].value, series.points[i - 1].value);
  }
}

TEST(MonitorTest, RatesMatchThroughput) {
  MonitorRig rig;
  Monitor mon(rig.dep.controller(), MonitorRig::kTenant);
  mon.watch(rig.machine.tun(0)->id(), attr::kTxBytes);
  rig.sim.run_for(Duration::seconds(1.0));  // warm up
  for (int i = 0; i < 4; ++i) {
    mon.sample();
    rig.sim.run_for(Duration::millis(500));
  }
  Monitor::Series rates =
      mon.rates(rig.machine.tun(0)->id(), attr::kTxBytes);
  ASSERT_EQ(rates.points.size(), 3u);
  // 500 Mbps = 62.5e6 bytes/s.
  EXPECT_NEAR(rates.mean(), 62.5e6, 3e6);
}

TEST(MonitorTest, UnknownElementYieldsEmptySeries) {
  MonitorRig rig;
  Monitor mon(rig.dep.controller(), MonitorRig::kTenant);
  mon.watch(ElementId{"nope"}, attr::kTxBytes);
  mon.sample();
  EXPECT_TRUE(mon.values(ElementId{"nope"}, attr::kTxBytes).empty());
}

TEST(MonitorTest, SeriesStatistics) {
  Monitor::Series s;
  s.points = {{SimTime::millis(0), 5}, {SimTime::millis(1), 1},
              {SimTime::millis(2), 3}};
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.last(), 3.0);
}

// --- RemediationAdvisor ---------------------------------------------------------

ContentionReport contention_report(ElementKind loc, LossSpread spread,
                                   bool is_contention,
                                   std::vector<ResourceKind> res) {
  ContentionReport r;
  r.problem_found = true;
  r.primary_location = loc;
  r.spread = spread;
  r.is_contention = is_contention;
  r.candidate_resources = std::move(res);
  r.ranked.push_back({ElementId{"m0/vm0/tun"}, loc, 0, 1000});
  return r;
}

bool recommends(const std::vector<Recommendation>& recs, ActionKind a) {
  for (const auto& r : recs) {
    if (r.action == a) return true;
  }
  return false;
}

TEST(RemediationTest, BottleneckIsTenantProblem) {
  RemediationAdvisor advisor;
  auto recs = advisor.advise(contention_report(ElementKind::kTun,
                                               LossSpread::kSingleVm, false,
                                               {ResourceKind::kVmLocal}));
  ASSERT_FALSE(recs.empty());
  EXPECT_TRUE(recommends(recs, ActionKind::kScaleUpVm));
  EXPECT_EQ(recs[0].audience, Audience::kTenant);
}

TEST(RemediationTest, MemoryContentionSuggestsMigration) {
  RemediationAdvisor advisor;
  auto recs = advisor.advise(
      contention_report(ElementKind::kTun, LossSpread::kMultiVm, true,
                        {ResourceKind::kMemoryBandwidth}));
  EXPECT_TRUE(recommends(recs, ActionKind::kMigrateAggressor));
  EXPECT_EQ(recs[0].audience, Audience::kOperator);
}

TEST(RemediationTest, NicOverloadSuggestsCapacity) {
  RemediationAdvisor advisor;
  auto recs = advisor.advise(
      contention_report(ElementKind::kPNic, LossSpread::kSharedElement, true,
                        {ResourceKind::kIncomingBandwidth}));
  EXPECT_TRUE(recommends(recs, ActionKind::kAddNicCapacity));
}

TEST(RemediationTest, HealthyReportNoAction) {
  RemediationAdvisor advisor;
  ContentionReport healthy;
  auto recs = advisor.advise(healthy);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].action, ActionKind::kNoAction);
}

TEST(RemediationTest, OverloadedMiddleboxScaleOut) {
  RemediationAdvisor advisor;
  RootCauseReport r;
  r.root_causes.push_back(ElementId{"m0/vm-lb2/lb2"});
  r.root_cause_roles.push_back(MbRole::kOverloaded);
  auto recs = advisor.advise(r);
  EXPECT_TRUE(recommends(recs, ActionKind::kScaleOutMiddlebox));
  EXPECT_TRUE(recommends(recs, ActionKind::kInspectSoftware));
  EXPECT_EQ(recs[0].audience, Audience::kTenant);
  EXPECT_EQ(recs[0].target, "m0/vm-lb2/lb2");
}

TEST(RemediationTest, UnderloadedSourceNoAction) {
  RemediationAdvisor advisor;
  RootCauseReport r;
  r.root_causes.push_back(ElementId{"client"});
  r.root_cause_roles.push_back(MbRole::kUnderloaded);
  auto recs = advisor.advise(r);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].action, ActionKind::kNoAction);
}

TEST(RemediationTest, TextRendering) {
  RemediationAdvisor advisor;
  RootCauseReport r;
  r.root_causes.push_back(ElementId{"nfs"});
  r.root_cause_roles.push_back(MbRole::kOverloaded);
  std::string text = to_text(advisor.advise(r));
  EXPECT_NE(text.find("scale-out-middlebox"), std::string::npos);
  EXPECT_NE(text.find("nfs"), std::string::npos);
  EXPECT_NE(text.find("[tenant]"), std::string::npos);
}

}  // namespace
}  // namespace perfsight
