// Cross-machine packet paths over the switch fabric: NFV chains spanning
// physical servers (Fig. 2's deployment shape) built from two
// PhysicalMachines.
#include "cluster/fabric.h"

#include <gtest/gtest.h>

#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"

namespace perfsight::cluster {
namespace {

using namespace literals;

FlowSpec flow(uint32_t id, uint32_t size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.packet_size = size;
  return f;
}

struct TwoMachineRig {
  sim::Simulator sim{Duration::millis(1)};
  vm::PhysicalMachine m0{"m0", dp::StackParams{}, &sim};
  vm::PhysicalMachine m1{"m1", dp::StackParams{}, &sim};
  SwitchFabric fabric;

  TwoMachineRig() {
    fabric.attach(&m0);
    fabric.attach(&m1);
  }
};

TEST(FabricTest, DeliversAcrossMachines) {
  TwoMachineRig rig;
  // m0: firewall middlebox VM forwarding flow 1 -> flow 2.
  int fw = rig.m0.add_vm({"fw", 1.0});
  FlowSpec in = flow(1);
  FlowSpec out = flow(2);
  dp::ForwardApp::Config cfg;
  cfg.capacity = 5_gbps;
  cfg.egress_flow = out.id;
  rig.m0.set_forward_app(fw, cfg);
  rig.m0.route_flow_to_vm(in, fw);
  rig.m0.route_flow_to_wire(out.id, "fw-out");
  rig.m0.add_ingress_source("src", in, 1_gbps);
  // fabric: flow 2 goes to m1, whose tenant VM consumes it.
  rig.fabric.route_flow(out.id, &rig.m1);
  int app_vm = rig.m1.add_vm({"app", 1.0});
  rig.m1.set_sink_app(app_vm);
  rig.m1.route_flow_to_vm(out, app_vm);

  rig.sim.run_for(2_s);
  // 1 Gbps for 2 s through firewall and fabric to the app: 250 MB.
  double received =
      static_cast<double>(rig.m1.app(app_vm)->stats().bytes_in.value());
  EXPECT_NEAR(received, 250e6, 0.05 * 250e6);
  EXPECT_EQ(rig.fabric.unrouted_packets(), 0u);
}

TEST(FabricTest, ExternalEgressCounted) {
  TwoMachineRig rig;
  int v = rig.m0.add_vm({"vm0", 1.0});
  FlowSpec out = flow(9);
  dp::SourceApp::Config cfg;
  cfg.flow = out;
  cfg.rate = 2_gbps;
  rig.m0.set_source_app(v, cfg);
  rig.m0.route_flow_to_wire(out.id, "to-internet");
  rig.fabric.route_flow_external(out.id);

  rig.sim.run_for(1_s);
  EXPECT_NEAR(static_cast<double>(rig.fabric.external_bytes(out.id)), 250e6,
              0.05 * 250e6);
  EXPECT_GT(rig.fabric.external_packets(out.id), 150000u);
}

TEST(FabricTest, UnroutedFlowsCounted) {
  TwoMachineRig rig;
  int v = rig.m0.add_vm({"vm0", 1.0});
  FlowSpec out = flow(9);
  dp::SourceApp::Config cfg;
  cfg.flow = out;
  cfg.rate = 100_mbps;
  rig.m0.set_source_app(v, cfg);
  rig.m0.route_flow_to_wire(out.id, "nowhere");
  // No fabric route installed.
  rig.sim.run_for(Duration::millis(200));
  EXPECT_GT(rig.fabric.unrouted_packets(), 0u);
}

TEST(FabricTest, ChainAcrossThreeMachinesWithBottleneck) {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m0("m0", dp::StackParams{}, &sim);
  vm::PhysicalMachine m1("m1", dp::StackParams{}, &sim);
  vm::PhysicalMachine m2("m2", dp::StackParams{}, &sim);
  SwitchFabric fabric;
  fabric.attach(&m0);
  fabric.attach(&m1);
  fabric.attach(&m2);

  // m0: load balancer (fast); m1: IPS limited to 300 Mbps; m2: server.
  FlowSpec f_in = flow(1), f_lb = flow(2), f_ips = flow(3);
  int lb = m0.add_vm({"lb", 1.0});
  dp::ForwardApp::Config lb_cfg;
  lb_cfg.capacity = 5_gbps;
  lb_cfg.egress_flow = f_lb.id;
  m0.set_forward_app(lb, lb_cfg);
  m0.route_flow_to_vm(f_in, lb);
  m0.route_flow_to_wire(f_lb.id, "lb-out");
  m0.add_ingress_source("clients", f_in, 1_gbps);
  fabric.route_flow(f_lb.id, &m1);

  int ips = m1.add_vm({"ips", 1.0});
  dp::ForwardApp::Config ips_cfg;
  ips_cfg.capacity = 300_mbps;  // the chain's bottleneck
  ips_cfg.egress_flow = f_ips.id;
  m1.set_forward_app(ips, ips_cfg);
  m1.route_flow_to_vm(f_lb, ips);
  m1.route_flow_to_wire(f_ips.id, "ips-out");
  fabric.route_flow(f_ips.id, &m2);

  int server = m2.add_vm({"server", 1.0});
  m2.set_sink_app(server);
  m2.route_flow_to_vm(f_ips, server);

  sim.run_for(2_s);
  // End-to-end goodput equals the IPS capacity...
  double received =
      static_cast<double>(m2.app(server)->stats().bytes_in.value());
  EXPECT_NEAR(received, 75e6, 0.08 * 75e6);  // 300 Mbps * 2 s
  // ...and the loss is confined to the IPS VM's datapath on m1 (its guest
  // socket), not to m0 or m2 — exactly what localizes the bottleneck.
  EXPECT_GT(m1.guest_socket(ips)->stats().drop_pkts.value(), 10000u);
  EXPECT_EQ(m0.guest_socket(lb)->stats().drop_pkts.value(), 0u);
  EXPECT_EQ(m2.tun(server)->stats().drop_pkts.value(), 0u);
}

TEST(FabricTest, DiagnosisSpansMachines) {
  TwoMachineRig rig;
  Deployment dep(&rig.sim);
  // Victim VM on m1 receives via fabric from a source "gateway" on m0's
  // pNIC; a memory hog on m1 causes TUN drops there.
  int v0 = rig.m0.add_vm({"relay", 1.0});
  FlowSpec in = flow(1), relayed = flow(2);
  dp::ForwardApp::Config cfg;
  cfg.capacity = 5_gbps;
  cfg.egress_flow = relayed.id;
  rig.m0.set_forward_app(v0, cfg);
  rig.m0.route_flow_to_vm(in, v0);
  rig.m0.route_flow_to_wire(relayed.id, "relay-out");
  rig.m0.add_ingress_source("src", in, DataRate::gbps(1.6));
  rig.fabric.route_flow(relayed.id, &rig.m1);
  int v1 = rig.m1.add_vm({"victim", 1.0});
  int v2 = rig.m1.add_vm({"victim2", 1.0});
  rig.m1.set_sink_app(v1);
  rig.m1.set_sink_app(v2);
  rig.m1.route_flow_to_vm(relayed, v1);
  FlowSpec other = flow(3);
  rig.m1.route_flow_to_vm(other, v2);
  rig.m1.add_ingress_source("src2", other, DataRate::gbps(1.6));
  rig.m1.add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);

  Agent* a0 = dep.add_agent("agent-m0");
  Agent* a1 = dep.add_agent("agent-m1");
  dep.attach(&rig.m0, a0);
  dep.attach(&rig.m1, a1);
  const TenantId tenant{1};
  // The tenant owns elements on both machines -> both stacks get scanned.
  PS_CHECK(dep.assign(tenant, rig.m0.tun(v0)->id(), a0).is_ok());
  PS_CHECK(dep.assign(tenant, rig.m1.tun(v1)->id(), a1).is_ok());

  rig.sim.run_for(3_s);
  ContentionDetector det(dep.controller(), RuleBook::standard());
  det.set_loss_threshold(100);
  ContentionReport r =
      det.diagnose(tenant, Duration::seconds(1.0), rig.m1.aux_signals());
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.primary_location, ElementKind::kTun);
  // The lossy TUNs are on m1.
  EXPECT_EQ(r.ranked[0].id.name.substr(0, 2), "m1");
}

}  // namespace
}  // namespace perfsight::cluster
