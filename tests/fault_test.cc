// Fault-tolerant collection: fault-plan determinism, retry/backoff budgets,
// circuit breakers, agent crash/restart absorption, and partial-data
// diagnosis.  The byte-identity tests double as the parallel-vs-sequential
// contract check under faults, and the churn test is a TSan target.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/deployment.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/faults.h"
#include "perfsight/monitor.h"
#include "perfsight/rootcause.h"
#include "perfsight/trace.h"

namespace perfsight {
namespace {

class FakeSource : public StatsSource {
 public:
  FakeSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs;
    return r;
  }

  std::vector<Attr> attrs;

 private:
  ElementId id_;
  ChannelKind kind_;
};

std::vector<std::unique_ptr<FakeSource>> make_sources(size_t n) {
  std::vector<std::unique_ptr<FakeSource>> out;
  const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                               ChannelKind::kNetDeviceFile,
                               ChannelKind::kOvsChannel};
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<FakeSource>("m0/el" + std::to_string(i),
                                          kinds[i % 4]);
    s->attrs = {{attr::kRxPkts, static_cast<double>(100 * i)},
                {attr::kTxPkts, static_cast<double>(90 * i)}};
    out.push_back(std::move(s));
  }
  return out;
}

ChannelFaultSpec mixed_spec() {
  ChannelFaultSpec s;
  s.transient_p = 0.15;
  s.timeout_p = 0.10;
  s.stale_p = 0.10;
  s.torn_p = 0.10;
  return s;
}

FaultPlan mixed_plan(uint64_t seed = 7) {
  FaultPlan plan(seed);
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    plan.set_channel_faults(static_cast<ChannelKind>(k), mixed_spec());
  }
  return plan;
}

RetryPolicy lenient_retry() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.element_budget = Duration::millis(8);
  return p;
}

// --- fault plan -------------------------------------------------------------

TEST(FaultPlanTest, SameSeedSameScheduleAnyCallOrder) {
  FaultPlan a = mixed_plan(42), b = mixed_plan(42);
  const ElementId ids[] = {ElementId{"x"}, ElementId{"y"}, ElementId{"z"}};
  std::vector<FaultDecision> forward, backward;
  for (int t = 0; t < 200; ++t) {
    for (const ElementId& id : ids) {
      forward.push_back(
          a.decide(id, ChannelKind::kProcFs, SimTime::millis(t), 1));
    }
  }
  for (int t = 199; t >= 0; --t) {
    for (size_t i = 3; i-- > 0;) {
      backward.push_back(
          b.decide(ids[i], ChannelKind::kProcFs, SimTime::millis(t), 1));
    }
  }
  // Reverse-order calls see the exact same schedule: decide() is pure.
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    const FaultDecision& f = forward[i];
    const FaultDecision& r = backward[backward.size() - 1 - i];
    EXPECT_EQ(static_cast<int>(f.kind), static_cast<int>(r.kind));
    EXPECT_EQ(f.torn_salt, r.torn_salt);
  }
  // The mix actually produces every configured fault class.
  size_t counts[5] = {};
  for (const FaultDecision& d : forward) ++counts[static_cast<int>(d.kind)];
  EXPECT_GT(counts[static_cast<int>(FaultKind::kNone)], 0u);
  EXPECT_GT(counts[static_cast<int>(FaultKind::kTransient)], 0u);
  EXPECT_GT(counts[static_cast<int>(FaultKind::kTimeout)], 0u);
  EXPECT_GT(counts[static_cast<int>(FaultKind::kStale)], 0u);
  EXPECT_GT(counts[static_cast<int>(FaultKind::kTorn)], 0u);
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  FaultPlan a = mixed_plan(1), b = mixed_plan(2);
  size_t differ = 0;
  for (int t = 0; t < 500; ++t) {
    FaultDecision da =
        a.decide(ElementId{"e"}, ChannelKind::kProcFs, SimTime::millis(t), 1);
    FaultDecision db =
        b.decide(ElementId{"e"}, ChannelKind::kProcFs, SimTime::millis(t), 1);
    if (da.kind != db.kind) ++differ;
  }
  EXPECT_GT(differ, 0u);
}

TEST(FaultPlanTest, EmptyPlanDisabledAndNeverFires) {
  FaultPlan plan(9);
  EXPECT_FALSE(plan.enabled());
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(static_cast<int>(plan.decide(ElementId{"e"},
                                           ChannelKind::kMbSocket,
                                           SimTime::millis(t), 1)
                                   .kind),
              static_cast<int>(FaultKind::kNone));
  }
  plan.schedule_crash("a0", SimTime::seconds(1));
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.crashes_between("a0", SimTime{}, SimTime::seconds(2)), 1u);
  EXPECT_EQ(plan.crashes_between("a0", SimTime::seconds(1),
                                 SimTime::seconds(2)),
            0u);  // (since, until]: consumed once
  EXPECT_EQ(plan.crashes_between("other", SimTime{}, SimTime::seconds(2)), 0u);
}

TEST(FaultPlanTest, TornReadIsDeterministicAndPartial) {
  StatsRecord r;
  r.element = ElementId{"e"};
  r.timestamp = SimTime::millis(3);
  r.attrs = {{attr::kRxPkts, 1}, {attr::kTxPkts, 2}, {attr::kDropPkts, 3},
             {attr::kRxBytes, 4}};
  StatsRecord t1 = apply_torn_read(r, 0xdeadbeef);
  StatsRecord t2 = apply_torn_read(r, 0xdeadbeef);
  EXPECT_EQ(to_wire(t1), to_wire(t2));
  EXPECT_GE(t1.attrs.size(), 1u);
  EXPECT_LT(t1.attrs.size(), r.attrs.size());
  // Single-attr records cannot tear.
  StatsRecord one;
  one.attrs = {{attr::kRxPkts, 1}};
  EXPECT_EQ(apply_torn_read(one, 5).attrs.size(), 1u);
}

TEST(FaultPlanTest, FromEnvParsesSpec) {
  setenv("PERFSIGHT_FAULTS", "seed=13,transient=0.5,timeout=0.1", 1);
  std::optional<FaultPlan> plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed(), 13u);
  EXPECT_TRUE(plan->enabled());
  unsetenv("PERFSIGHT_FAULTS");
  EXPECT_FALSE(FaultPlan::from_env().has_value());
}

// Regression (lossy-atof bugfix): std::atof turned "0.05x" into 0.05 and any
// typo into 0.0, silently running a different experiment than the operator
// asked for.  Parsing is now strict — malformed items are rejected whole —
// and probabilities clamp to [0,1].
TEST(FaultPlanTest, FromEnvRejectsMalformedAndClamps) {
  const ElementId e{"e"};

  // Trailing garbage on a value: the item is rejected, not parsed as 0.05.
  setenv("PERFSIGHT_FAULTS", "transient=0.05x", 1);
  std::optional<FaultPlan> plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->spec_for(e, ChannelKind::kProcFs).transient_p, 0.0);
  EXPECT_FALSE(plan->enabled());

  // Typo'd key: rejected (was silently skipped — same outcome, but now with
  // a warning); the plan must not gain faults from it.
  setenv("PERFSIGHT_FAULTS", "transiet=0.05", 1);
  plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->enabled());

  // Empty seed value: rejected; the default seed survives and well-formed
  // items later in the string still apply.
  setenv("PERFSIGHT_FAULTS", "seed=,transient=0.25", 1);
  plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed(), 1u);
  EXPECT_EQ(plan->spec_for(e, ChannelKind::kProcFs).transient_p, 0.25);

  // Probability above 1: clamped to 1.0 (atof let 1.5 skew the cumulative
  // threshold draw in decide()).
  setenv("PERFSIGHT_FAULTS", "torn=1.5", 1);
  plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->spec_for(e, ChannelKind::kProcFs).torn_p, 1.0);
  EXPECT_TRUE(plan->enabled());

  // Negative probability: clamped to 0.
  setenv("PERFSIGHT_FAULTS", "stale=-0.3", 1);
  plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->spec_for(e, ChannelKind::kProcFs).stale_p, 0.0);

  unsetenv("PERFSIGHT_FAULTS");
}

// --- retry / budgets --------------------------------------------------------

TEST(RetryTest, RetryAbsorbsTransientFault) {
  FaultPlan plan(3);
  ChannelFaultSpec spec;
  spec.transient_p = 0.5;
  plan.set_element_faults(ElementId{"e"}, spec);

  // decide() is pure: find a query time where attempt 1 fails and attempt 2
  // succeeds, then issue the query there.
  SimTime when;
  bool found = false;
  for (int t = 1; t < 2000; ++t) {
    SimTime now = SimTime::millis(t);
    if (plan.decide(ElementId{"e"}, ChannelKind::kProcFs, now, 1).kind ==
            FaultKind::kTransient &&
        plan.decide(ElementId{"e"}, ChannelKind::kProcFs, now, 2).kind ==
            FaultKind::kNone) {
      when = now;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  Agent agent("a0", 7);
  FakeSource s("e", ChannelKind::kProcFs);
  s.attrs = {{attr::kRxPkts, 5}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);
  agent.set_retry_policy(lenient_retry());

  ScopedTraceRecorder scoped;
  Result<QueryResponse> r = agent.query(ElementId{"e"}, when);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attempts, 2u);
  EXPECT_TRUE(is_fresh(r.value().quality));
  AgentFaultStats fs = agent.fault_stats();
  EXPECT_EQ(fs.retries, 1u);
  EXPECT_GE(fs.faults_injected, 1u);
  EXPECT_EQ(fs.exhausted, 0u);

  // The retry shows up on the element's flight-recorder timeline.
  bool saw_retry = false;
  for (const TraceEvent& e : scoped.recorder().events_for(ElementId{"e"})) {
    if (e.kind == TraceEventKind::kAgentRetry) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_STREQ(to_string(TraceEventKind::kAgentRetry), "agent_retry");
}

TEST(RetryTest, ExhaustionFailsUnavailable) {
  FaultPlan plan(3);
  ChannelFaultSpec spec;
  spec.transient_p = 1.0;  // every attempt fails
  plan.set_element_faults(ElementId{"e"}, spec);

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);
  RetryPolicy p = lenient_retry();
  agent.set_retry_policy(p);

  Result<QueryResponse> r = agent.query(ElementId{"e"}, SimTime::millis(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(static_cast<int>(r.status().code()),
            static_cast<int>(StatusCode::kUnavailable));
  AgentFaultStats fs = agent.fault_stats();
  EXPECT_EQ(fs.exhausted, 1u);
  EXPECT_EQ(fs.retries, p.max_attempts - 1);
}

TEST(RetryTest, TimeoutRoutesDeadlineExceeded) {
  FaultPlan plan(3);
  ChannelFaultSpec spec;
  spec.timeout_p = 1.0;
  plan.set_element_faults(ElementId{"e"}, spec);

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);  // default policy: one attempt, no budget

  Result<QueryResponse> r = agent.query(ElementId{"e"}, SimTime::millis(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(static_cast<int>(r.status().code()),
            static_cast<int>(StatusCode::kDeadlineExceeded));
}

TEST(RetryTest, ElementBudgetBoundsResponseTime) {
  FaultPlan plan(5);
  ChannelFaultSpec spec;
  spec.timeout_p = 0.5;
  spec.transient_p = 0.3;
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    plan.set_channel_faults(static_cast<ChannelKind>(k), spec);
  }
  plan.set_timeout_spike(Duration::millis(10));

  auto sources = make_sources(12);
  Agent agent("a0", 11);
  for (const auto& s : sources) ASSERT_TRUE(agent.add_element(s.get()).is_ok());
  agent.set_fault_plan(&plan);
  RetryPolicy p;
  p.max_attempts = 4;
  p.element_budget = Duration::millis(3);
  agent.set_retry_policy(p);

  bool saw_deadline = false;
  for (int round = 0; round < 20; ++round) {
    for (const QueryResponse& r : agent.poll_all(SimTime::millis(round))) {
      // The sweep never runs past its per-element deadline budget.
      EXPECT_LE(r.response_time.ns(), p.element_budget.ns())
          << r.record.element.name;
    }
  }
  saw_deadline = agent.fault_stats().deadline_hits > 0;
  EXPECT_TRUE(saw_deadline);
}

// --- circuit breaker --------------------------------------------------------

TEST(BreakerTest, OpensFastFailsHalfOpensAndCloses) {
  FaultPlan plan(3);
  ChannelFaultSpec spec;
  spec.transient_p = 1.0;
  plan.set_element_faults(ElementId{"bad"}, spec);

  Agent agent("a0");
  FakeSource bad("bad", ChannelKind::kProcFs);
  FakeSource good("good", ChannelKind::kProcFs);
  good.attrs = {{attr::kRxPkts, 1}};
  ASSERT_TRUE(agent.add_element(&bad).is_ok());
  ASSERT_TRUE(agent.add_element(&good).is_ok());
  agent.set_fault_plan(&plan);
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = Duration::millis(20);
  agent.set_breaker_config(cfg);

  // Three consecutive failures trip the kProcFs breaker.
  for (int t = 1; t <= 3; ++t) {
    EXPECT_FALSE(agent.query(ElementId{"bad"}, SimTime::millis(t)).ok());
  }
  EXPECT_EQ(static_cast<int>(agent.breaker_state(ChannelKind::kProcFs)),
            static_cast<int>(BreakerState::kOpen));
  EXPECT_EQ(agent.fault_stats().breaker_opened, 1u);

  // While cooling down, even the healthy element fast-fails with zero
  // channel time and zero attempts.
  Result<QueryResponse> ff = agent.query(ElementId{"good"}, SimTime::millis(5));
  ASSERT_FALSE(ff.ok());
  EXPECT_EQ(agent.fault_stats().breaker_fast_fails, 1u);

  // After the cooldown the next query runs as a half-open probe; it
  // succeeds and the breaker closes.
  Result<QueryResponse> probe =
      agent.query(ElementId{"good"}, SimTime::millis(30));
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(static_cast<int>(agent.breaker_state(ChannelKind::kProcFs)),
            static_cast<int>(BreakerState::kClosed));
  EXPECT_EQ(agent.fault_stats().breaker_closed, 1u);
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half_open");
}

TEST(BreakerTest, FailedProbeReopens) {
  FaultPlan plan(3);
  ChannelFaultSpec spec;
  spec.transient_p = 1.0;
  plan.set_element_faults(ElementId{"bad"}, spec);

  Agent agent("a0");
  FakeSource bad("bad", ChannelKind::kProcFs);
  ASSERT_TRUE(agent.add_element(&bad).is_ok());
  agent.set_fault_plan(&plan);
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown = Duration::millis(10);
  agent.set_breaker_config(cfg);

  EXPECT_FALSE(agent.query(ElementId{"bad"}, SimTime::millis(1)).ok());
  EXPECT_FALSE(agent.query(ElementId{"bad"}, SimTime::millis(2)).ok());
  ASSERT_EQ(static_cast<int>(agent.breaker_state(ChannelKind::kProcFs)),
            static_cast<int>(BreakerState::kOpen));
  // Probe after cooldown fails -> straight back to open.
  EXPECT_FALSE(agent.query(ElementId{"bad"}, SimTime::millis(20)).ok());
  EXPECT_EQ(static_cast<int>(agent.breaker_state(ChannelKind::kProcFs)),
            static_cast<int>(BreakerState::kOpen));
  EXPECT_EQ(agent.fault_stats().breaker_opened, 2u);
}

// --- agent crash / counter reset -------------------------------------------

TEST(CrashTest, CrashResetsMonotoneCountersOnly) {
  FaultPlan plan(3);
  plan.schedule_crash("a0", SimTime::millis(5));

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  s.attrs = {{attr::kRxPkts, 1000}, {attr::kCapacityMbps, 100}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);

  Result<QueryResponse> before = agent.query(ElementId{"e"}, SimTime::millis(1));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().record.get_or(attr::kRxPkts, -1), 1000);

  // Crash at 5ms: the next collect restarts the monotone counters from
  // zero; gauges keep their values.
  s.attrs[0].value = 1500;
  Result<QueryResponse> after = agent.query(ElementId{"e"}, SimTime::millis(10));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().record.get_or(attr::kRxPkts, -1), 0);
  EXPECT_EQ(after.value().record.get_or(attr::kCapacityMbps, -1), 100);
  EXPECT_EQ(agent.fault_stats().crashes, 1u);

  // Counters grow again from the new origin.
  s.attrs[0].value = 1800;
  Result<QueryResponse> later = agent.query(ElementId{"e"}, SimTime::millis(20));
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(later.value().record.get_or(attr::kRxPkts, -1), 300);
}

// Small rig: one agent + controller over scripted sources whose counters
// advance with simulated time.
class FaultRig {
 public:
  explicit FaultRig(size_t elements, uint64_t agent_seed = 42)
      : controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }),
        agent_("agent-a", agent_seed),
        sources_(make_sources(elements)) {
    for (const auto& s : sources_) {
      EXPECT_TRUE(agent_.add_element(s.get()).is_ok());
    }
    controller_.register_agent(&agent_);
    for (const auto& s : sources_) {
      EXPECT_TRUE(
          controller_.register_element(tenant_, s->id(), &agent_).is_ok());
      controller_.register_stack_element(&agent_, s->id());
    }
  }

  SimTime advance(Duration d) {
    now_ = now_ + d;
    for (auto& s : sources_) {
      s->attrs[0].value += 1000;  // rxPkts
      s->attrs[1].value += 900;   // txPkts -> every element "loses" 100
    }
    return now_;
  }

  SimTime now_;
  Controller controller_;
  Agent agent_;
  std::vector<std::unique_ptr<FakeSource>> sources_;
  const TenantId tenant_{1};
};

TEST(CrashTest, MonitorRatesAbsorbCrashReset) {
  FaultRig rig(4);
  FaultPlan plan(3);
  plan.schedule_crash("agent-a", SimTime::seconds(2.5));
  rig.agent_.set_fault_plan(&plan);

  Monitor mon(&rig.controller_, rig.tenant_);
  mon.watch(rig.sources_[0]->id(), attr::kRxPkts);
  for (int tick = 0; tick < 6; ++tick) {
    mon.sample();
    rig.advance(Duration::seconds(1));
  }
  EXPECT_EQ(rig.agent_.fault_stats().crashes, 1u);

  // The reset shows as a negative delta which rates() suppresses: every
  // surviving rate point is the true 1000 pkts/s, never negative.
  Monitor::Series r = mon.rates(rig.sources_[0]->id(), attr::kRxPkts);
  ASSERT_GE(r.points.size(), 2u);
  for (const Monitor::Point& p : r.points) {
    EXPECT_DOUBLE_EQ(p.value, 1000.0);
  }
}

// --- stale / torn serving ---------------------------------------------------

TEST(StaleTest, StaleServedFromLastGoodWithTrueTimestamp) {
  FaultPlan plan(3);
  // Stale serving configured (on an unregistered element, so nothing fires
  // yet): the agent tracks last-good records but queries run undisturbed.
  ChannelFaultSpec stale_elsewhere;
  stale_elsewhere.stale_p = 1.0;
  plan.set_element_faults(ElementId{"warm"}, stale_elsewhere);

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  s.attrs = {{attr::kRxPkts, 7}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);

  ASSERT_TRUE(agent.query(ElementId{"e"}, SimTime::millis(1)).ok());

  // Now every query to "e" is stale: the agent serves the last good record
  // at its true (old) timestamp.
  ChannelFaultSpec stale;
  stale.stale_p = 1.0;
  plan.set_element_faults(ElementId{"e"}, stale);
  s.attrs[0].value = 99;

  Result<QueryResponse> r = agent.query(ElementId{"e"}, SimTime::millis(50));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int>(r.value().quality),
            static_cast<int>(DataQuality::kStale));
  EXPECT_EQ(r.value().record.timestamp, SimTime::millis(1));
  EXPECT_EQ(r.value().record.get_or(attr::kRxPkts, -1), 7);
  EXPECT_EQ(agent.fault_stats().stale_served, 1u);
}

TEST(StaleTest, StaleWithoutLastGoodActsTransient) {
  FaultPlan plan(3);
  ChannelFaultSpec stale;
  stale.stale_p = 1.0;
  plan.set_element_faults(ElementId{"e"}, stale);

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);

  // Nothing cached yet: the stale read has nothing to serve and fails.
  Result<QueryResponse> r = agent.query(ElementId{"e"}, SimTime::millis(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(static_cast<int>(r.status().code()),
            static_cast<int>(StatusCode::kUnavailable));
}

TEST(TornTest, TornReadDeliversPartialRecord) {
  FaultPlan plan(3);
  ChannelFaultSpec torn;
  torn.torn_p = 1.0;
  plan.set_element_faults(ElementId{"e"}, torn);

  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  s.attrs = {{attr::kRxPkts, 1}, {attr::kTxPkts, 2}, {attr::kDropPkts, 3},
             {attr::kRxBytes, 4}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  agent.set_fault_plan(&plan);

  Result<QueryResponse> r = agent.query(ElementId{"e"}, SimTime::millis(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int>(r.value().quality),
            static_cast<int>(DataQuality::kTorn));
  EXPECT_GE(r.value().record.attrs.size(), 1u);
  EXPECT_LT(r.value().record.attrs.size(), s.attrs.size());
  EXPECT_EQ(agent.fault_stats().torn_reads, 1u);
}

// --- parallel-vs-sequential byte identity under faults ----------------------

TEST(ParallelFaultTest, PollAllByteIdenticalUnderFaults) {
  auto sources = make_sources(12);
  FaultPlan plan = mixed_plan();
  Agent seq("a0", 7), par("a0", 7);
  for (const auto& s : sources) {
    ASSERT_TRUE(seq.add_element(s.get()).is_ok());
    ASSERT_TRUE(par.add_element(s.get()).is_ok());
  }
  for (Agent* a : {&seq, &par}) {
    a->set_fault_plan(&plan);
    a->set_retry_policy(lenient_retry());
  }

  ThreadPool pool(4);
  for (int round = 0; round < 6; ++round) {
    SimTime now = SimTime::millis(round);
    std::vector<QueryResponse> s = seq.poll_all(now);
    std::vector<QueryResponse> p = par.poll_all(now, &pool);
    ASSERT_EQ(s.size(), p.size());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(to_wire(s[i].record), to_wire(p[i].record));
      EXPECT_EQ(s[i].response_time.ns(), p[i].response_time.ns());
      EXPECT_EQ(static_cast<int>(s[i].quality),
                static_cast<int>(p[i].quality));
      EXPECT_EQ(s[i].attempts, p[i].attempts);
    }
  }
  AgentFaultStats fs = seq.fault_stats(), fp = par.fault_stats();
  EXPECT_GT(fs.faults_injected, 0u);  // the plan actually fired
  EXPECT_EQ(fs.faults_injected, fp.faults_injected);
  EXPECT_EQ(fs.retries, fp.retries);
  EXPECT_EQ(fs.exhausted, fp.exhausted);
  EXPECT_EQ(fs.stale_served, fp.stale_served);
  EXPECT_EQ(fs.torn_reads, fp.torn_reads);
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    ChannelKind kind = static_cast<ChannelKind>(k);
    EXPECT_EQ(seq.channel_latency(kind).count(),
              par.channel_latency(kind).count());
    EXPECT_DOUBLE_EQ(seq.channel_latency(kind).sum(),
                     par.channel_latency(kind).sum());
  }
}

TEST(ParallelFaultTest, QueryBatchByteIdenticalUnderFaults) {
  auto sources = make_sources(10);
  std::vector<ElementId> ids;
  for (const auto& s : sources) ids.push_back(s->id());
  FaultPlan plan = mixed_plan();

  Agent seq("a0", 7), par("a0", 7);
  for (const auto& s : sources) {
    ASSERT_TRUE(seq.add_element(s.get()).is_ok());
    ASSERT_TRUE(par.add_element(s.get()).is_ok());
  }
  for (Agent* a : {&seq, &par}) {
    a->set_fault_plan(&plan);
    a->set_retry_policy(lenient_retry());
  }

  ThreadPool pool(4);
  for (int round = 0; round < 6; ++round) {
    SimTime now = SimTime::millis(round);
    BatchResponse s = seq.query_batch(ids, now);
    BatchResponse p = par.query_batch(ids, now, &pool);
    ASSERT_EQ(s.responses.size(), p.responses.size());
    EXPECT_EQ(s.channel_time.ns(), p.channel_time.ns());
    EXPECT_EQ(s.degraded, p.degraded);
    for (size_t i = 0; i < s.responses.size(); ++i) {
      EXPECT_EQ(to_wire(s.responses[i].record),
                to_wire(p.responses[i].record));
      EXPECT_EQ(s.responses[i].response_time.ns(),
                p.responses[i].response_time.ns());
      EXPECT_EQ(static_cast<int>(s.responses[i].quality),
                static_cast<int>(p.responses[i].quality));
    }
  }
}

TEST(ParallelFaultTest, DisabledFaultPathMatchesNoPlanAgent) {
  // A zero-probability plan must not perturb the RNG stream: outputs stay
  // byte-identical to an agent with no plan installed at all.
  auto sources = make_sources(8);
  FaultPlan inert(7);
  Agent with("a0", 7), without("a0", 7);
  for (const auto& s : sources) {
    ASSERT_TRUE(with.add_element(s.get()).is_ok());
    ASSERT_TRUE(without.add_element(s.get()).is_ok());
  }
  with.set_fault_plan(&inert);

  for (int round = 0; round < 4; ++round) {
    SimTime now = SimTime::millis(round);
    std::vector<QueryResponse> a = with.poll_all(now);
    std::vector<QueryResponse> b = without.poll_all(now);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(to_wire(a[i].record), to_wire(b[i].record));
      EXPECT_EQ(a[i].response_time.ns(), b[i].response_time.ns());
    }
  }
}

// --- batch degradation trace ------------------------------------------------

TEST(BatchTraceTest, DegradedBatchEmitsTraceEvent) {
  ScopedTraceRecorder scoped;
  FaultPlan plan(3);
  ChannelFaultSpec torn;
  torn.torn_p = 1.0;
  plan.set_element_faults(ElementId{"e0"}, torn);

  Agent agent("a0");
  FakeSource e0("e0", ChannelKind::kProcFs), e1("e1", ChannelKind::kProcFs);
  e0.attrs = {{attr::kRxPkts, 1}, {attr::kTxPkts, 2}};
  e1.attrs = {{attr::kRxPkts, 3}};
  ASSERT_TRUE(agent.add_element(&e0).is_ok());
  ASSERT_TRUE(agent.add_element(&e1).is_ok());
  agent.set_fault_plan(&plan);

  BatchResponse batch = agent.query_batch(
      {ElementId{"e0"}, ElementId{"e1"}, ElementId{"ghost"}},
      SimTime::millis(1));
  EXPECT_EQ(batch.unknown_ids, 1u);
  EXPECT_EQ(batch.degraded, 1u);

  bool saw = false;
  for (const TraceEvent& e :
       scoped.recorder().events_for(ElementId{"a0/batch"})) {
    if (e.kind == TraceEventKind::kAgentBatchDegraded) {
      saw = true;
      EXPECT_EQ(e.value, 2);  // 1 unknown + 1 degraded
    }
  }
  EXPECT_TRUE(saw);
  EXPECT_STREQ(to_string(TraceEventKind::kAgentBatchDegraded),
               "agent_batch_degraded");
}

// --- partial-data diagnosis -------------------------------------------------

TEST(PartialDiagnosisTest, ContentionReportsBlindSpots) {
  FaultRig rig(8);
  FaultPlan plan(3);
  ChannelFaultSpec dead;
  dead.transient_p = 1.0;
  plan.set_element_faults(rig.sources_[2]->id(), dead);
  rig.agent_.set_fault_plan(&plan);

  ContentionDetector det(&rig.controller_, RuleBook::standard());
  ContentionReport report = det.diagnose(rig.tenant_, Duration::seconds(1));

  ASSERT_EQ(report.blind_spots.size(), 1u);
  EXPECT_EQ(report.blind_spots[0].id, rig.sources_[2]->id());
  EXPECT_EQ(static_cast<int>(report.blind_spots[0].quality),
            static_cast<int>(DataQuality::kMissing));
  EXPECT_NEAR(report.coverage, 7.0 / 8.0, 1e-9);
  // The dead element is not ranked; everything else still is.
  for (const ElementLossEntry& e : report.ranked) {
    EXPECT_NE(e.id, rig.sources_[2]->id());
  }
  EXPECT_EQ(report.ranked.size(), 7u);
  EXPECT_NE(report.narrative.find("unmeasured"), std::string::npos);
  EXPECT_NE(to_text(report).find("blind spots"), std::string::npos);
}

TEST(PartialDiagnosisTest, FreshSweepHasFullCoverage) {
  FaultRig rig(6);
  ContentionDetector det(&rig.controller_, RuleBook::standard());
  ContentionReport report = det.diagnose(rig.tenant_, Duration::seconds(1));
  EXPECT_TRUE(report.blind_spots.empty());
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_EQ(report.narrative.find("unmeasured"), std::string::npos);
}

// Scripted middlebox for Algorithm 2 (mirrors rootcause_unit_test).
struct ScriptedMb : StatsSource {
  ScriptedMb(std::string n, double capacity)
      : id_{std::move(n)}, cap(capacity) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kMbSocket; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = {{attr::kInBytes, in_bytes},
               {attr::kInTimeNs, in_time_ns},
               {attr::kOutBytes, out_bytes},
               {attr::kOutTimeNs, out_time_ns},
               {attr::kCapacityMbps, cap}};
    return r;
  }

  ElementId id_;
  double cap;
  double in_bytes = 0, in_time_ns = 0, out_bytes = 0, out_time_ns = 0;
};

TEST(PartialDiagnosisTest, RootCauseRefusesToExonerateDegradedMiddlebox) {
  SimTime now;
  std::vector<std::function<void(double)>> per_second;
  Agent agent("a0");
  Controller controller(
      [&](Duration d) {
        now = now + d;
        for (auto& fn : per_second) fn(d.sec());
        return now;
      },
      [&] { return now; });
  controller.register_agent(&agent);
  const TenantId tenant{1};

  ScriptedMb m1("mb1", 100), m2("mb2", 100);
  for (ScriptedMb* m : {&m1, &m2}) {
    ASSERT_TRUE(agent.add_element(m).is_ok());
    ASSERT_TRUE(controller.register_element(tenant, m->id(), &agent).is_ok());
    controller.register_middlebox(tenant, m->id());
  }
  controller.add_chain_edge(tenant, m1.id(), m2.id());
  // Both middleboxes read well below capacity: both ReadBlocked, so a fully
  // fresh run exonerates the entire chain.
  per_second.push_back([&](double s) {
    for (ScriptedMb* m : {&m1, &m2}) {
      m->in_bytes += 20 * s * 1e6 / 8;
      m->in_time_ns += 0.9 * s * 1e9;
      m->out_bytes += 20 * s * 1e6 / 8;
      m->out_time_ns += 0.05 * s * 1e9;
    }
  });

  RootCauseAnalyzer analyzer(&controller);
  RootCauseReport fresh = analyzer.analyze(tenant, Duration::seconds(1));
  EXPECT_TRUE(fresh.root_causes.empty());
  EXPECT_DOUBLE_EQ(fresh.coverage, 1.0);

  // Same chain, but mb1's counters cannot be fetched: Algorithm 2 must not
  // exonerate what it could not measure — mb1 stays a candidate, flagged
  // unverified, and the report's coverage drops.
  FaultPlan plan(3);
  ChannelFaultSpec dead;
  dead.transient_p = 1.0;
  plan.set_element_faults(m1.id(), dead);
  agent.set_fault_plan(&plan);

  RootCauseReport degraded = analyzer.analyze(tenant, Duration::seconds(1));
  ASSERT_EQ(degraded.root_causes.size(), 1u);
  EXPECT_EQ(degraded.root_causes[0], m1.id());
  ASSERT_EQ(degraded.blind_spots.size(), 1u);
  EXPECT_EQ(degraded.blind_spots[0].id, m1.id());
  EXPECT_DOUBLE_EQ(degraded.coverage, 0.5);
  EXPECT_NE(degraded.narrative.find("unverified"), std::string::npos);
  EXPECT_NE(to_text(degraded).find("[missing]"), std::string::npos);
}

TEST(PartialDiagnosisTest, AlertCarriesDiagnosisCoverage) {
  FaultRig rig(4);
  FaultPlan plan(3);
  ChannelFaultSpec dead;
  dead.transient_p = 1.0;
  plan.set_element_faults(rig.sources_[1]->id(), dead);
  rig.agent_.set_fault_plan(&plan);

  Monitor mon(&rig.controller_, rig.tenant_);
  mon.watch(rig.sources_[0]->id(), attr::kRxPkts);
  ContentionDetector det(&rig.controller_, RuleBook::standard());
  AlertWatcher watcher(&mon, &det, nullptr);
  AlertRule rule;
  rule.name = "rx-rate";
  rule.element = rig.sources_[0]->id();
  rule.attr = attr::kRxPkts;
  rule.on_rate = true;
  rule.threshold = 1;  // fires on any forward progress
  rule.action = AlertRule::Action::kContention;
  watcher.add_rule(rule);

  mon.sample();
  rig.advance(Duration::seconds(1));
  mon.sample();
  std::vector<Alert> fired = watcher.check();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_LT(fired[0].coverage, 1.0);
  EXPECT_NEAR(fired[0].coverage, fired[0].contention.coverage, 1e-12);
  EXPECT_NE(to_text(fired[0]).find("partial data"), std::string::npos);
}

// --- fault matrix (CI runs this binary under several PERFSIGHT_FAULTS) -----

TEST(FaultMatrixTest, SweepInvariantsHoldAtAnyIntensity) {
  // Under CI's fault matrix the plan comes from the environment; standalone
  // runs use a representative default, so the invariants are always
  // exercised.
  FaultPlan plan = FaultPlan::from_env().value_or(mixed_plan(17));

  auto sources = make_sources(16);
  Agent a("a0", 5), b("a0", 5);
  for (const auto& s : sources) {
    ASSERT_TRUE(a.add_element(s.get()).is_ok());
    ASSERT_TRUE(b.add_element(s.get()).is_ok());
  }
  RetryPolicy p;
  p.max_attempts = 3;
  p.element_budget = Duration::millis(5);
  for (Agent* ag : {&a, &b}) {
    ag->set_fault_plan(&plan);
    ag->set_retry_policy(p);
  }

  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    SimTime now = SimTime::millis(round * 10);
    std::vector<QueryResponse> ra = a.poll_all(now);
    std::vector<QueryResponse> rb = b.poll_all(now, &pool);
    ASSERT_EQ(ra.size(), sources.size());
    ASSERT_EQ(rb.size(), ra.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      // Budget respected; every response is one of the four quality levels;
      // parallel equals sequential regardless of intensity.
      EXPECT_LE(ra[i].response_time.ns(), p.element_budget.ns());
      int q = static_cast<int>(ra[i].quality);
      EXPECT_GE(q, static_cast<int>(DataQuality::kFresh));
      EXPECT_LE(q, static_cast<int>(DataQuality::kMissing));
      EXPECT_EQ(to_wire(ra[i].record), to_wire(rb[i].record));
      EXPECT_EQ(static_cast<int>(ra[i].quality),
                static_cast<int>(rb[i].quality));
    }
  }
}

// --- deployment plumbing ----------------------------------------------------

TEST(DeploymentFaultTest, EnvPlanInstallsOnAllAgentsAndSweepSummarizes) {
  setenv("PERFSIGHT_FAULTS", "seed=5,torn=1.0", 1);
  sim::Simulator sim(Duration::millis(1));
  cluster::Deployment dep(&sim);
  Agent* a0 = dep.add_agent("host0");
  ASSERT_TRUE(dep.use_env_fault_plan());
  Agent* a1 = dep.add_agent("host1");  // added after: inherits the plan
  unsetenv("PERFSIGHT_FAULTS");

  auto sources = make_sources(4);
  ASSERT_TRUE(a0->add_element(sources[0].get()).is_ok());
  ASSERT_TRUE(a0->add_element(sources[1].get()).is_ok());
  ASSERT_TRUE(a1->add_element(sources[2].get()).is_ok());
  ASSERT_TRUE(a1->add_element(sources[3].get()).is_ok());

  auto sweep = dep.poll_sweep(SimTime::millis(1));
  cluster::Deployment::SweepQuality q =
      cluster::Deployment::summarize(sweep);
  EXPECT_EQ(q.total(), 4u);
  // torn=1.0 on every channel: every multi-attr element tears.
  EXPECT_EQ(q.torn, 4u);
  EXPECT_EQ(q.fresh + q.stale + q.missing, 0u);
  EXPECT_GT(a0->fault_stats().torn_reads, 0u);
  EXPECT_GT(a1->fault_stats().torn_reads, 0u);
}

TEST(DeploymentFaultTest, RetryAndBreakerConfigReplayOntoNewAgents) {
  sim::Simulator sim(Duration::millis(1));
  cluster::Deployment dep(&sim);
  FaultPlan plan(3);
  ChannelFaultSpec dead;
  dead.transient_p = 1.0;
  plan.set_element_faults(ElementId{"m0/el0"}, dead);
  dep.set_fault_plan(&plan);
  RetryPolicy p;
  p.max_attempts = 2;
  dep.set_retry_policy(p);
  Agent* a = dep.add_agent("late");  // all three settings replayed

  auto sources = make_sources(1);
  ASSERT_TRUE(a->add_element(sources[0].get()).is_ok());
  EXPECT_FALSE(a->query(sources[0]->id(), SimTime::millis(1)).ok());
  EXPECT_EQ(a->fault_stats().retries, 1u);  // max_attempts=2 reached the agent
}

// --- thread safety under faults (TSan target) -------------------------------

TEST(FaultChurnTest, ConcurrentPollsQueriesAndChurnUnderFaults) {
  auto sources = make_sources(16);
  FaultPlan plan = mixed_plan();
  Agent agent("a0");
  for (const auto& s : sources) {
    ASSERT_TRUE(agent.add_element(s.get()).is_ok());
  }
  agent.set_fault_plan(&plan);
  agent.set_retry_policy(lenient_retry());
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 4;
  agent.set_breaker_config(cfg);
  ThreadPool pool(4);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < 4; ++i) {
        (void)agent.remove_element(sources[i]->id());
        (void)agent.add_element(sources[i].get());
      }
    }
  });
  std::thread querier([&] {
    int t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)agent.query(sources[8]->id(), SimTime::millis(++t));
      (void)agent.fault_stats();
      (void)agent.breaker_state(ChannelKind::kProcFs);
    }
  });
  for (int round = 0; round < 200; ++round) {
    std::vector<QueryResponse> out =
        agent.poll_all(SimTime::millis(round), &pool);
    EXPECT_GE(out.size(), 12u);
    EXPECT_LE(out.size(), 16u);
  }
  stop.store(true);
  churn.join();
  querier.join();
}

// --- campaign grammar properties ---------------------------------------------

// Two plans are schedule-equivalent when every observable the grammar can
// express agrees: seed, Bernoulli knobs (via decide()/stream_drop(), which
// are pure in their arguments), and agent_down() over a sampling grid that
// straddles every window boundary either plan could have scheduled.
void expect_schedule_equivalent(const FaultPlan& a, const FaultPlan& b) {
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_EQ(a.enabled(), b.enabled());
  EXPECT_EQ(a.has_campaign(), b.has_campaign());
  const std::vector<std::string> agents = {"a0", "a1", "a2", "a3", "a4",
                                           "b0", "b1", "zz"};
  for (const std::string& ag : agents) {
    for (int ms = 0; ms <= 2200; ms += 25) {
      SimTime t = SimTime::millis(ms);
      EXPECT_EQ(a.agent_down(ag, t), b.agent_down(ag, t))
          << ag << " @ " << ms << "ms";
    }
    for (uint64_t seq = 1; seq <= 64; ++seq) {
      EXPECT_EQ(a.stream_drop(ag, seq), b.stream_drop(ag, seq))
          << ag << " seq " << seq;
    }
  }
  const ElementId e{"grid/e"};
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    auto kind = static_cast<ChannelKind>(k);
    for (int ms = 1; ms <= 400; ms += 7) {
      for (uint32_t attempt = 0; attempt < 3; ++attempt) {
        FaultDecision da = a.decide(e, kind, SimTime::millis(ms), attempt);
        FaultDecision db = b.decide(e, kind, SimTime::millis(ms), attempt);
        EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
      }
    }
  }
}

// Malformed campaign items are rejected whole: the plan never gains a
// partial window, never crashes, and well-formed items sharing the spec
// string still apply.  Each entry here violates the grammar one way —
// missing separator, non-numeric time, empty name, inverted/empty window,
// zero count, trailing garbage.
TEST(CampaignGrammarTest, MalformedCampaignItemsRejectedWholeNeverApply) {
  const std::vector<std::string> malformed = {
      "outage=a1@300",        // no end time
      "outage=a1@300-",       // empty end time
      "outage=a1@-500",       // empty start time
      "outage=a1@x-500",      // non-numeric start
      "outage=a1@300-500x",   // trailing garbage on end
      "outage=a1@500-300",    // inverted window
      "outage=a1@300-300",    // empty window
      "outage=@300-500",      // empty agent name
      "outage=a1",            // no window at all
      "host=a1",              // no tag
      "host=a1:",             // empty tag
      "host=:rack0",          // empty agent name
      "host_outage=rack0@70-x",
      "host_outage=@100-200",
      "rolling=a*2@100",      // no +W
      "rolling=a*2@100+",     // empty W
      "rolling=a*2@100+0",    // zero-width step
      "rolling=a*0@100+50",   // zero agents
      "rolling=a*x@100+50",   // non-numeric count
      "rolling=*2@100+50",    // empty prefix
      "rolling=a2@100+50",    // no star
  };
  for (const std::string& bad : malformed) {
    std::optional<FaultPlan> alone = FaultPlan::parse(bad);
    ASSERT_TRUE(alone.has_value()) << bad;
    EXPECT_FALSE(alone->has_campaign()) << bad;
    for (int ms = 0; ms <= 1000; ms += 50) {
      EXPECT_FALSE(alone->agent_down("a1", SimTime::millis(ms))) << bad;
      EXPECT_FALSE(alone->agent_down("a0", SimTime::millis(ms))) << bad;
    }

    // A valid outage in the same string survives its malformed neighbor,
    // and the malformed item contributes nothing alongside it.
    std::optional<FaultPlan> mixed =
        FaultPlan::parse("seed=9," + bad + ",outage=ok@100-200");
    ASSERT_TRUE(mixed.has_value()) << bad;
    EXPECT_EQ(mixed->seed(), 9u) << bad;
    EXPECT_TRUE(mixed->agent_down("ok", SimTime::millis(150))) << bad;
    EXPECT_FALSE(mixed->agent_down("ok", SimTime::millis(250))) << bad;
    EXPECT_FALSE(mixed->agent_down("a1", SimTime::millis(350))) << bad;
    expect_schedule_equivalent(
        *mixed, *FaultPlan::parse("seed=9,outage=ok@100-200"));
  }
}

// Property: for any grammar-expressible plan, to_env_string() is a fixed
// point of the parse/serialize loop and the round-tripped plan schedules
// the identical campaign.  Rolling upgrades desugar to plain outages at
// schedule time, so they survive one extra hop: the generated spec's canon
// form spells them as outage= items, and that form is already fixed.
TEST(CampaignGrammarTest, GeneratedPlansRoundTripToFixedPoint) {
  Pcg32 rng(20260808);
  for (int trial = 0; trial < 120; ++trial) {
    std::string spec = "seed=" + std::to_string(rng.next_below(1000) + 1);
    auto prob = [&rng] {
      // Multiples of 1/64 round-trip exactly through decimal formatting.
      return std::to_string(rng.next_below(65) / 64.0);
    };
    if (rng.next_below(2) == 0) spec += ",transient=" + prob();
    if (rng.next_below(2) == 0) spec += ",timeout=" + prob();
    if (rng.next_below(2) == 0) spec += ",stale=" + prob();
    if (rng.next_below(2) == 0) spec += ",torn=" + prob();
    if (rng.next_below(2) == 0) spec += ",stream_drop=" + prob();
    const uint32_t n_outages = rng.next_below(3);
    for (uint32_t i = 0; i < n_outages; ++i) {
      const uint64_t t0 = rng.next_below(1000);
      const uint64_t t1 = t0 + 1 + rng.next_below(500);
      spec += ",outage=a" + std::to_string(rng.next_below(5)) + "@" +
              std::to_string(t0) + "-" + std::to_string(t1);
    }
    if (rng.next_below(3) == 0) {
      // Tag a couple of agents onto a host and take the host down.
      spec += ",host=a0:rack0,host=a1:rack0";
      const uint64_t t0 = rng.next_below(1000);
      spec += ",host_outage=rack0@" + std::to_string(t0) + "-" +
              std::to_string(t0 + 1 + rng.next_below(300));
    }
    if (rng.next_below(3) == 0) {
      const uint64_t t0 = rng.next_below(500);
      spec += ",rolling=b*" + std::to_string(1 + rng.next_below(3)) + "@" +
              std::to_string(t0) + "+" +
              std::to_string(1 + rng.next_below(200));
    }

    std::optional<FaultPlan> p1 = FaultPlan::parse(spec);
    ASSERT_TRUE(p1.has_value()) << spec;
    const std::string canon = p1->to_env_string();
    std::optional<FaultPlan> p2 = FaultPlan::parse(canon);
    ASSERT_TRUE(p2.has_value()) << spec;
    EXPECT_EQ(p2->to_env_string(), canon) << spec;
    expect_schedule_equivalent(*p1, *p2);
  }
}

}  // namespace
}  // namespace perfsight
