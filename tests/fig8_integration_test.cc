// Full Fig. 8 timeline as an integration test: every injected phase
// produces its Table 1 drop location, quiet phases stay quiet, and
// middlebox throughput dips during each disturbance and recovers after.
#include <gtest/gtest.h>

#include "cluster/scenarios.h"

namespace perfsight::cluster {
namespace {

struct DropDeltas {
  uint64_t pnic = 0, backlog = 0, tun_mb0 = 0, tun_mb1 = 0, tun_other = 0;
  uint64_t total() const {
    return pnic + backlog + tun_mb0 + tun_mb1 + tun_other;
  }
};

class Fig8Integration : public ::testing::Test {
 protected:
  Fig8Integration() { scenario_.schedule_phases(kPhase); }

  DropDeltas run_phase() {
    auto snap = [&] {
      DropDeltas d;
      vm::PhysicalMachine& m = scenario_.machine();
      d.pnic = m.pnic()->stats().drop_pkts.value();
      d.backlog = m.backlog()->stats().drop_pkts.value();
      d.tun_mb0 = m.tun(0)->stats().drop_pkts.value();
      d.tun_mb1 = m.tun(1)->stats().drop_pkts.value();
      for (int i = 2; i < m.num_vms(); ++i) {
        d.tun_other += m.tun(i)->stats().drop_pkts.value();
      }
      return d;
    };
    DropDeltas before = snap();
    scenario_.sim().run_for(kPhase);
    DropDeltas after = snap();
    DropDeltas delta;
    delta.pnic = after.pnic - before.pnic;
    delta.backlog = after.backlog - before.backlog;
    delta.tun_mb0 = after.tun_mb0 - before.tun_mb0;
    delta.tun_mb1 = after.tun_mb1 - before.tun_mb1;
    delta.tun_other = after.tun_other - before.tun_other;
    return delta;
  }

  static constexpr Duration kPhase = Duration::seconds(2.0);
  Fig8Scenario scenario_;
};

TEST_F(Fig8Integration, AllPhasesMatchTable1) {
  // Phase 0: baseline — quiet.
  DropDeltas d = run_phase();
  EXPECT_LT(d.total(), 3000u) << "baseline should be loss-free";

  // Phase 1: rx flood — pNIC dominates.
  d = run_phase();
  EXPECT_GT(d.pnic, 100000u);
  EXPECT_GT(d.pnic, 5 * (d.total() - d.pnic));

  run_phase();  // recovery

  // Phase 3: egress small-packet flood — backlog dominates.
  d = run_phase();
  EXPECT_GT(d.backlog, 100000u);
  EXPECT_GT(d.backlog, 5 * (d.total() - d.backlog));

  run_phase();  // recovery

  // Phase 5: tenant CPU hogs — TUN drops across tenant VMs.
  d = run_phase();
  EXPECT_GT(d.tun_other, 10000u);
  EXPECT_EQ(d.pnic, 0u);

  run_phase();  // recovery

  // Phase 7: tenant memory hogs — TUN drops again (shared-resource).
  d = run_phase();
  EXPECT_GT(d.tun_mb0 + d.tun_mb1 + d.tun_other, 10000u);
  EXPECT_EQ(d.pnic, 0u);

  run_phase();  // recovery

  // Phase 9: CPU hog inside mb0 — ONLY mb0's TUN drops.
  d = run_phase();
  EXPECT_GT(d.tun_mb0, 10000u);
  EXPECT_EQ(d.tun_mb1, 0u);
  EXPECT_LT(d.tun_other, 3000u);

  // Final recovery: quiet again.
  d = run_phase();
  EXPECT_LT(d.total(), 3000u);
}

TEST_F(Fig8Integration, ThroughputDipsAndRecovers) {
  scenario_.mb_throughput(kPhase);  // reset the meter
  std::vector<double> series;
  for (int p = 0; p < 11; ++p) {
    scenario_.sim().run_for(kPhase);
    series.push_back(scenario_.mb_throughput(kPhase).mbits_per_sec());
  }
  // Baseline ~800 Mbps (two 400 Mbps middlebox flows).
  EXPECT_NEAR(series[0], 800, 80);
  // The mb-internal hog phase halves it (one of two flows dies)...
  EXPECT_LT(series[9], 600);
  // ...and it recovers afterwards.
  EXPECT_NEAR(series[10], 800, 80);
}

}  // namespace
}  // namespace perfsight::cluster
