// The fleet-server differential gate: ONE poll()-driven event-loop thread
// hosting MANY agents, dialed by MANY concurrent controllers, must produce
// controller output byte-identical to the same controllers talking to the
// agents in-process.  Covers tcp + unix endpoints, traced + untraced
// requests, the pre-roster (old-format) fallback to the primary agent, the
// Deployment::add_remote_agents discovery path, and a churn variant racing
// connects/disconnects against live batches (TSan's beat).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/deployment.h"
#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/controller.h"
#include "perfsight/remote_agent.h"
#include "perfsight/trace.h"
#include "perfsight/transport.h"
#include "perfsight/wire.h"
#include "sim/simulator.h"

namespace perfsight {
namespace {

using transport::WallDuration;

std::string unique_unix_path() {
  static std::atomic<int> counter{0};
  return "/tmp/ps-fleet-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Constant-valued element: concurrent controllers must read identical bytes
// no matter how their queries interleave on the event loop, so nothing here
// moves during a test.
class ConstSource : public StatsSource {
 public:
  ConstSource(std::string id, ChannelKind kind, std::vector<Attr> attrs)
      : id_{std::move(id)}, kind_(kind), attrs_(std::move(attrs)) {}
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs_;
    return r;
  }

 private:
  ElementId id_;
  ChannelKind kind_;
  std::vector<Attr> attrs_;
};

// `agents` machines behind ONE fleet server (one event-loop thread).
struct Fleet {
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<std::unique_ptr<ConstSource>> sources;
  std::vector<std::vector<ElementId>> ids_of;  // per agent, creation order
  std::vector<ElementId> all_ids;
  std::unique_ptr<RemoteAgentServer> server;

  Fleet(size_t n_agents, size_t per_agent, bool unix_mode) {
    const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                                 ChannelKind::kNetDeviceFile,
                                 ChannelKind::kOvsChannel};
    std::vector<Agent*> raw;
    for (size_t a = 0; a < n_agents; ++a) {
      agents.push_back(
          std::make_unique<Agent>("fleet-" + std::to_string(a), a + 1));
      ids_of.emplace_back();
      for (size_t e = 0; e < per_agent; ++e) {
        const size_t i = a * per_agent + e;
        auto s = std::make_unique<ConstSource>(
            "f" + std::to_string(a) + "/el" + std::to_string(e), kinds[i % 4],
            std::vector<Attr>{
                {attr::kRxPkts, static_cast<double>(1000 * (i + 1))},
                {attr::kTxPkts, static_cast<double>(900 * (i + 1))},
                {attr::kDropPkts, static_cast<double>(i % 7)},
                {attr::kVm, static_cast<double>(i % 3)}});
        EXPECT_TRUE(agents.back()->add_element(s.get()).is_ok());
        ids_of.back().push_back(s->id());
        all_ids.push_back(s->id());
        sources.push_back(std::move(s));
      }
      raw.push_back(agents.back().get());
    }
    const transport::Endpoint ep =
        unix_mode ? transport::Endpoint::unix_path(unique_unix_path())
                  : transport::Endpoint::tcp("127.0.0.1", 0);
    server = std::make_unique<RemoteAgentServer>(raw, ep);
    EXPECT_TRUE(server->start().is_ok());
  }
};

std::string fmt(const Result<Controller::QualifiedRecord>& r) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  return "OK " + to_wire(r.value().record) + " q=" +
         to_string(r.value().quality) + "\n";
}

// The workload every controller runs: a fleet-wide multi-attr sweep (the
// batch path, including an id nobody serves) plus single-element reads (the
// kSingleRequest path) off the first and last elements.  Folded to a string
// so byte-identity is one EXPECT_EQ.
std::string run_fleet_script(const Fleet& fleet,
                             const std::vector<AgentClient*>& clients) {
  SimTime now;
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  c.set_batching(true);
  c.set_wire_loopback(false);
  const TenantId tenant{1};
  for (size_t a = 0; a < clients.size(); ++a) {
    c.register_agent(clients[a]);
    for (const ElementId& id : fleet.ids_of[a]) {
      EXPECT_TRUE(c.register_element(tenant, id, clients[a]).is_ok());
    }
  }

  std::string out;
  std::vector<ElementId> ids = fleet.all_ids;
  ids.push_back(ElementId{"ghost"});
  for (const auto& r : c.get_attr_many(
           tenant, ids, {attr::kRxPkts, attr::kDropPkts, attr::kVm})) {
    out += fmt(r);
  }
  out += fmt(c.get_attr_q(tenant, fleet.all_ids.front(), {attr::kRxPkts}));
  out += fmt(c.get_attr_q(tenant, fleet.all_ids.back(), {attr::kDropPkts}));
  return out;
}

// In-process oracle: the same script over raw Agent pointers.
std::string oracle_of(const Fleet& fleet) {
  std::vector<AgentClient*> local;
  for (const auto& a : fleet.agents) local.push_back(a.get());
  return run_fleet_script(fleet, local);
}

// One controller's socket-backed client set: an adapter per agent, each
// bound to its roster name, all dialing the SAME endpoint.
std::vector<std::unique_ptr<RemoteAgent>> dial_fleet(const Fleet& fleet) {
  std::vector<std::unique_ptr<RemoteAgent>> remotes;
  for (const auto& a : fleet.agents) {
    remotes.push_back(
        std::make_unique<RemoteAgent>(fleet.server->endpoint(), a->name()));
    EXPECT_TRUE(remotes.back()->connect().is_ok());
  }
  return remotes;
}

// --- the differential gate ---------------------------------------------------

// 16 agents on one event-loop thread, 3 controllers querying concurrently
// (48 multiplexed connections), every controller's output byte-identical to
// the in-process oracle — twice, so reply interleaving across rounds is
// covered too.
TEST(FleetMuxTest, SixteenAgentsServeConcurrentControllersByteIdentical) {
  Fleet fleet(16, 3, /*unix_mode=*/false);
  const std::string oracle = oracle_of(fleet);

  constexpr int kControllers = 3;
  std::vector<std::string> got(kControllers * 2);
  std::vector<std::thread> controllers;
  for (int t = 0; t < kControllers; ++t) {
    controllers.emplace_back([&, t] {
      auto remotes = dial_fleet(fleet);
      std::vector<AgentClient*> clients;
      for (auto& r : remotes) clients.push_back(r.get());
      for (int round = 0; round < 2; ++round) {
        got[t * 2 + round] = run_fleet_script(fleet, clients);
      }
    });
  }
  for (auto& t : controllers) t.join();

  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], oracle) << "controller run " << i << " diverged";
  }
  EXPECT_GE(fleet.server->batches_served(), 16u * kControllers * 2);
  EXPECT_EQ(fleet.server->accept_errors(), 0u);
}

// The same contract over a unix-domain socket endpoint.
TEST(FleetMuxTest, UnixSocketFleetMatchesOracle) {
  Fleet fleet(16, 2, /*unix_mode=*/true);
  const std::string oracle = oracle_of(fleet);

  std::vector<std::string> got(2);
  std::vector<std::thread> controllers;
  for (int t = 0; t < 2; ++t) {
    controllers.emplace_back([&, t] {
      auto remotes = dial_fleet(fleet);
      std::vector<AgentClient*> clients;
      for (auto& r : remotes) clients.push_back(r.get());
      got[t] = run_fleet_script(fleet, clients);
    });
  }
  for (auto& t : controllers) t.join();
  EXPECT_EQ(got[0], oracle);
  EXPECT_EQ(got[1], oracle);
}

// Traced requests keep the records byte-identical (the trace rides separate
// piggyback messages, never inside the batch) and every routed agent's
// serve span comes home attributed to that agent's lane.
TEST(FleetMuxTest, TracedFleetBatchesStayByteIdenticalAndShipServeSpans) {
  Fleet fleet(4, 2, /*unix_mode=*/false);
  const std::string oracle = oracle_of(fleet);

  ScopedTraceRecorder scoped;
  auto remotes = dial_fleet(fleet);
  std::vector<AgentClient*> clients;
  for (auto& r : remotes) clients.push_back(r.get());
  // No pool: the scatter visits agents sequentially, so each piggyback
  // drains exactly the serve span its own batch recorded.
  EXPECT_EQ(run_fleet_script(fleet, clients), oracle);

  // The single-request path records a serve span only under an active
  // caller context (the controller's get_attr_q carries none), and never
  // piggybacks — a harvest brings it home.
  {
    ScopedTraceContext ctx(TraceContext{77, 5});
    Result<QueryResponse> r = remotes[1]->query_attrs(
        fleet.ids_of[1].front(), {attr::kRxPkts}, SimTime::millis(2));
    ASSERT_TRUE(r.ok()) << r.status().message();
  }
  ASSERT_TRUE(remotes[0]->harvest_trace().is_ok());

  const std::vector<TraceRecorder::RemoteLane> lanes =
      scoped.recorder().remote_lanes();
  size_t batch_spans = 0;
  size_t single_spans = 0;
  for (const TraceRecorder::RemoteLane& lane : lanes) {
    // Lane attribution is always a hosted agent: the routed agent's name on
    // piggybacks, the primary's on harvests.
    EXPECT_EQ(lane.process.rfind("fleet-", 0), 0u) << lane.process;
    for (const TraceEvent& e : lane.events) {
      if (e.kind == TraceEventKind::kSpanServerBatch) ++batch_spans;
      if (e.kind == TraceEventKind::kSpanServerSingle) ++single_spans;
    }
  }
  EXPECT_EQ(batch_spans, fleet.agents.size());  // one per routed batch
  EXPECT_EQ(single_spans, 1u);                  // the traced query_attrs
}

// --- protocol compatibility --------------------------------------------------

// A bare (pre-roster) adapter dialing a fleet server binds the primary and
// still sees the full roster; binding a name the server does not host is a
// config error naming the roster, not a retryable transient.
TEST(FleetMuxTest, BareAdapterGetsPrimaryAndBadBindingNamesTheRoster) {
  Fleet fleet(3, 1, /*unix_mode=*/false);

  RemoteAgent bare(fleet.server->endpoint());
  ASSERT_TRUE(bare.connect().is_ok());
  EXPECT_EQ(bare.name(), "fleet-0");  // the primary
  EXPECT_EQ(bare.element_ids(), fleet.ids_of[0]);
  const std::vector<std::string> roster = bare.roster_names();
  ASSERT_EQ(roster.size(), 3u);
  EXPECT_EQ(roster[0], "fleet-0");
  EXPECT_EQ(roster[2], "fleet-2");
  // Old-format requests (no agent on the envelope) route to the primary.
  BatchResponse b = bare.query_batch(fleet.ids_of[0], SimTime::millis(1));
  ASSERT_EQ(b.responses.size(), fleet.ids_of[0].size());
  EXPECT_EQ(b.responses[0].quality, DataQuality::kFresh);

  RemoteAgent wrong(fleet.server->endpoint(), "nobody");
  Status st = wrong.connect();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("does not host agent 'nobody'"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("fleet-1"), std::string::npos) << st.message();

  // A single-agent server keeps the pre-roster hello: the roster a bare
  // adapter reports is just that agent.
  Agent solo("solo", 1);
  ConstSource s0("solo/el0", ChannelKind::kProcFs, {{attr::kRxPkts, 1.0}});
  ASSERT_TRUE(solo.add_element(&s0).is_ok());
  RemoteAgentServer server(&solo, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());
  RemoteAgent single(server.endpoint());
  ASSERT_TRUE(single.connect().is_ok());
  EXPECT_EQ(single.roster_names(), std::vector<std::string>{"solo"});
}

// Deployment::add_remote_agents: one endpoint spec discovers the roster and
// registers a bound adapter per hosted agent with the control plane.
TEST(FleetMuxTest, DeploymentBindsWholeRosterFromOneEndpoint) {
  Fleet fleet(16, 1, /*unix_mode=*/false);

  sim::Simulator sim;
  cluster::Deployment dep(&sim);
  Result<std::vector<RemoteAgent*>> bound =
      dep.add_remote_agents(fleet.server->endpoint().to_string());
  ASSERT_TRUE(bound.ok()) << bound.status().message();
  ASSERT_EQ(bound.value().size(), 16u);
  const TenantId tenant{1};
  for (size_t a = 0; a < bound.value().size(); ++a) {
    EXPECT_EQ(bound.value()[a]->name(), "fleet-" + std::to_string(a));
    for (const ElementId& id : fleet.ids_of[a]) {
      ASSERT_TRUE(dep.assign_remote(tenant, id, bound.value()[a]).is_ok());
    }
  }

  std::string out;
  for (const auto& r : dep.controller()->get_attr_many(
           tenant, fleet.all_ids, {attr::kRxPkts, attr::kDropPkts})) {
    out += fmt(r);
  }
  std::string oracle;
  {
    SimTime now;
    Controller c(
        [&now](Duration d) {
          now = now + d;
          return now;
        },
        [&now] { return now; });
    c.set_batching(true);
    c.set_wire_loopback(false);
    for (size_t a = 0; a < fleet.agents.size(); ++a) {
      c.register_agent(fleet.agents[a].get());
      for (const ElementId& id : fleet.ids_of[a]) {
        ASSERT_TRUE(
            c.register_element(tenant, id, fleet.agents[a].get()).is_ok());
      }
    }
    for (const auto& r : c.get_attr_many(tenant, fleet.all_ids,
                                         {attr::kRxPkts, attr::kDropPkts})) {
      oracle += fmt(r);
    }
  }
  EXPECT_EQ(out, oracle);
  // A typo'd binding through the Deployment front door fails loudly.
  EXPECT_EQ(dep.add_remote_agent(fleet.server->endpoint().to_string(), "nope")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --- churn (TSan's beat) -----------------------------------------------------

// Connections appearing and dying mid-stream while bound adapters keep
// querying: the event loop's accept path, reaping path and dispatch path
// all race, and nothing may tear a live controller's bytes.
TEST(FleetChurnTest, ConnectionChurnRacesFleetBatches) {
  Fleet fleet(4, 2, /*unix_mode=*/false);
  auto remotes = dial_fleet(fleet);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Steady controllers: every batch must come back whole.
  for (size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t a = t; a < remotes.size(); a += 2) {
          BatchResponse b =
              remotes[a]->query_batch(fleet.ids_of[a], SimTime::millis(1));
          EXPECT_EQ(b.responses.size(), fleet.ids_of[a].size());
        }
      }
    });
  }
  // Churner: dial, one query, hang up — forever.
  threads.emplace_back([&] {
    size_t a = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      RemoteAgent ephemeral(fleet.server->endpoint(),
                            fleet.agents[a % fleet.agents.size()]->name());
      if (ephemeral.connect().is_ok()) {
        (void)ephemeral.query_batch(fleet.ids_of[a % fleet.ids_of.size()],
                                    SimTime::millis(1));
      }
      ++a;
    }
  });
  // Server-side load: the agents' own poll path racing remote dispatch.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& a : fleet.agents) (void)a->poll_all(SimTime());
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();

  for (auto& r : remotes) {
    RemoteAgent::TransportStats stats = r->transport_stats();
    EXPECT_EQ(stats.damaged, 0u);
  }
  EXPECT_EQ(fleet.server->accept_errors(), 0u);
}

}  // namespace
}  // namespace perfsight
