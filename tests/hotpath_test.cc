// Hotpath overhead harness: counter correctness under instrumentation,
// determinism of the work models, and the per-update cost probes.
#include "perfsight/hotpath.h"

#include <gtest/gtest.h>

#include "perfsight/agent.h"

namespace perfsight {
namespace {

TEST(HotpathTest, CountsPacketsAndBytes) {
  HotpathConfig cfg;
  cfg.kind = MbWorkKind::kProxy;
  cfg.packet_bytes = 1500;
  cfg.simple_counters = true;
  HotpathResult r = run_hotpath(cfg, 100);
  EXPECT_EQ(r.packets, 100u);
  EXPECT_EQ(r.stats.pkts_in.value(), 100u);
  EXPECT_EQ(r.stats.bytes_in.value(), 150000u);
  EXPECT_EQ(r.stats.pkts_out.value(), 100u);
  EXPECT_GT(r.wall_ns, 0u);
}

TEST(HotpathTest, NoCountersMeansNoCounts) {
  HotpathConfig cfg;
  cfg.simple_counters = false;
  HotpathResult r = run_hotpath(cfg, 50);
  EXPECT_EQ(r.stats.pkts_in.value(), 0u);
}

TEST(HotpathTest, TimeCountersAccumulateIoTime) {
  HotpathConfig cfg;
  cfg.time_counters = true;
  HotpathResult r = run_hotpath(cfg, 200);
  EXPECT_GT(r.stats.in_time.nanos(), 0u);
  EXPECT_GT(r.stats.out_time.nanos(), 0u);
  // I/O time is a subset of wall time.
  EXPECT_LE(r.stats.in_time.nanos() + r.stats.out_time.nanos(), r.wall_ns * 2);
}

TEST(HotpathTest, ChecksumDeterministicPerKind) {
  for (MbWorkKind kind :
       {MbWorkKind::kProxy, MbWorkKind::kLoadBalancer, MbWorkKind::kCache,
        MbWorkKind::kRedundancyElim, MbWorkKind::kIps}) {
    HotpathConfig cfg;
    cfg.kind = kind;
    HotpathResult a = run_hotpath(cfg, 300);
    HotpathResult b = run_hotpath(cfg, 300);
    EXPECT_EQ(a.checksum, b.checksum) << to_string(kind);
  }
}

TEST(HotpathTest, InstrumentationDoesNotChangeResults) {
  // Counters must be observers: same processing outcome with and without.
  HotpathConfig plain;
  plain.kind = MbWorkKind::kIps;
  HotpathConfig instrumented = plain;
  instrumented.simple_counters = true;
  instrumented.time_counters = true;
  EXPECT_EQ(run_hotpath(plain, 500).checksum,
            run_hotpath(instrumented, 500).checksum);
}

TEST(HotpathTest, WorkKindsHaveDistinctCosts) {
  // The payload-scanning kinds must be measurably slower than pure
  // forwarding (they are the "high utilization yet healthy" middleboxes).
  HotpathConfig proxy;
  proxy.kind = MbWorkKind::kProxy;
  HotpathConfig ips;
  ips.kind = MbWorkKind::kIps;
  double proxy_pps = run_hotpath(proxy, 20000).pkts_per_sec();
  double ips_pps = run_hotpath(ips, 20000).pkts_per_sec();
  EXPECT_GT(proxy_pps, ips_pps);
}

TEST(HotpathTest, CounterCostProbesReturnSaneValues) {
  double simple_ns = measure_simple_counter_ns(500000);
  double timer_ns = measure_time_counter_ns(50000);
  EXPECT_GT(simple_ns, 0.0);
  EXPECT_LT(simple_ns, 100.0);  // an add, not a syscall
  EXPECT_GT(timer_ns, simple_ns);  // two clock reads cost more than an add
  EXPECT_LT(timer_ns, 5000.0);
}

TEST(HotpathStatsSourceTest, ExportsLiveCounters) {
  ElementStats stats;
  stats.pkts_in.add(7);
  stats.bytes_in.add(10500);
  HotpathStatsSource src(ElementId{"mb0"}, &stats);
  EXPECT_EQ(src.channel_kind(), ChannelKind::kMbSocket);
  StatsRecord r = src.collect(SimTime::millis(1));
  EXPECT_EQ(r.get(attr::kRxPkts), 7.0);
  EXPECT_EQ(r.get(attr::kRxBytes), 10500.0);
  // Live: later updates visible on the next collect.
  stats.pkts_in.add(3);
  EXPECT_EQ(src.collect(SimTime::millis(2)).get(attr::kRxPkts), 10.0);
}

}  // namespace
}  // namespace perfsight
