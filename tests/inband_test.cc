// In-band telemetry (perfsight/inband.h): the INT differential and the
// stamping/harvest contracts.
//
// The load-bearing guarantee: with stamping disabled (or never attached)
// the packet path is BIT-IDENTICAL to a build without INT — same counters,
// same queue evolution, same collected records — and zero INT bytes exist
// anywhere.  With stamping enabled, the standard counters still never
// change (the tag is metadata riding the fluid simulation, not traffic);
// what changes is that completed flights exist, aggregate into kInband
// StreamCache windows in the agent-channel attr format, and an
// INT-observed microburst triggers a targeted pull over exactly the
// implicated elements.
#include "perfsight/inband.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/backlog.h"
#include "dataplane/pnic.h"
#include "dataplane/pumps.h"
#include "dataplane/queues.h"
#include "perfsight/agent.h"
#include "perfsight/controller.h"
#include "perfsight/streaming.h"
#include "perfsight/wire.h"

namespace perfsight {
namespace {

using dp::GuestBacklog;
using dp::GuestSocket;
using dp::GuestStack;
using dp::HypervisorIo;
using dp::NapiPoll;
using dp::PCpuBacklog;
using dp::PNic;
using dp::PortIn;
using dp::Tun;
using dp::VNic;

constexpr TenantId kTenant{1};

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * size};
}

// Forwards the vswitch-side traffic into the TUN so the chain closes
// pNIC -> ... -> guest socket end to end.
struct ForwardPort : PortIn {
  PortIn* out = nullptr;
  void accept(PacketBatch b) override {
    if (out) out->accept(std::move(b));
  }
};

// The full per-VM chain from pumps_test, closed through a forwarding port.
struct ChainRig {
  ResourcePool cpu{"cpu", 8.0};
  ResourcePool mem{"mem", 25e9, PoolPolicy::kProportional};
  ResourcePool::ConsumerId softirq, qemu_cpu, qemu_mem, vcpu, backlog_mem;
  PNic pnic{ElementId{"pnic"}, {DataRate::gbps(10), 4096, 4096}};
  ForwardPort to_tun;
  std::unique_ptr<PCpuBacklog> backlog;
  Tun tun{ElementId{"tun"}, 0, QueueCaps{4096, 4 << 20}};
  VNic vnic{ElementId{"vnic"}, 0, 4096};
  GuestBacklog gbacklog{ElementId{"gb"}, 0, 4096};
  GuestSocket gsocket{ElementId{"gs"}, 0, 64 << 20};
  std::unique_ptr<NapiPoll> napi;
  std::unique_ptr<HypervisorIo> hyperio;
  std::unique_ptr<GuestStack> guest;
  SimTime now;

  ChainRig() {
    softirq = cpu.add_consumer({"softirq", 50.0, 2.0});
    qemu_cpu = cpu.add_consumer({"qemu", 1.0, 1.0});
    vcpu = cpu.add_consumer({"vcpu", 1.0, 1.0});
    backlog_mem = mem.add_consumer({"softirq-mem", 50.0, -1.0});
    qemu_mem = mem.add_consumer({"qemu-mem", 1.0, -1.0});
    backlog = std::make_unique<PCpuBacklog>(
        ElementId{"backlog"}, PCpuBacklog::Config{}, &cpu, softirq, &mem,
        backlog_mem, &to_tun);
    to_tun.out = &tun;
    napi = std::make_unique<NapiPoll>(ElementId{"napi"}, NapiPoll::Config{},
                                      &pnic, backlog.get(), &cpu, softirq);
    hyperio = std::make_unique<HypervisorIo>(
        ElementId{"qemu-io"}, 0, HypervisorIo::Config{}, &tun, &vnic,
        backlog.get(), &cpu, qemu_cpu, &mem, qemu_mem);
    guest = std::make_unique<GuestStack>("guest", GuestStack::Config{},
                                        &vnic, &gbacklog, &gsocket, &cpu,
                                        vcpu);
  }

  // Attach every stamping element; harvest at the guest socket.  Returns
  // nothing — slots live inside the stamper, elements keep back-pointers.
  void attach(inband::IntStamper& s) {
    s.attach(pnic);
    s.attach(*napi);
    s.attach(tun);
    s.attach(*hyperio);
    s.attach(vnic);
    s.attach(gbacklog);
    int gs_slot = s.attach(gsocket);
    s.set_harvest(gs_slot, true);
  }

  std::vector<dp::Element*> elements() {
    return {&pnic,  napi.get(), &tun,      hyperio.get(),
            &vnic, &gbacklog,  &gsocket};
  }

  void tick(inband::IntStamper* s = nullptr, Duration dt = Duration::millis(1)) {
    if (s) s->set_now(now);
    cpu.step(now, dt);
    mem.step(now, dt);
    backlog->step(now, dt);
    pnic.step(now, dt);
    napi->step(now, dt);
    hyperio->step(now, dt);
    guest->step(now, dt);
    // The middlebox application always keeps up: drain the socket buffer so
    // steady-state depths reflect in-flight occupancy, not unread backlog.
    gsocket.fetch(UINT64_MAX, UINT64_MAX);
    now = now + dt;
  }
};

// Canonical byte form of one element's collected record — exact equality,
// through the same codec the agent channels ship.
std::string canon(const dp::Element& e, SimTime at) {
  QueryResponse r;
  r.record = e.collect(at);
  r.quality = DataQuality::kFresh;
  r.attempts = 1;
  return wire::encode_frame(r).value();
}

// --- the INT differential ----------------------------------------------------

TEST(IntDifferentialTest, DisabledStampingIsBitIdenticalAndZeroBytes) {
  ChainRig bare;                      // no stamper at all
  ChainRig attached;                  // attached, every enable bit off
  ChainRig enabled;                   // attached and stamping
  inband::IntStamper off_stamper;
  inband::IntStamper on_stamper(inband::IntStamper::Config{1, 16, 4096});
  attached.attach(off_stamper);
  enabled.attach(on_stamper);
  on_stamper.enable_all(true);

  for (int t = 0; t < 40; ++t) {
    for (ChainRig* r : {&bare, &attached, &enabled}) {
      if (t < 30) r->pnic.offer_rx(batch(1, 120));
    }
    bare.tick();
    attached.tick(&off_stamper);
    enabled.tick(&on_stamper);
  }

  const SimTime at = bare.now;
  auto be = bare.elements();
  auto ae = attached.elements();
  auto ee = enabled.elements();
  for (size_t i = 0; i < be.size(); ++i) {
    // Disabled differential: byte-identical collection transcripts.
    EXPECT_EQ(canon(*ae[i], at), canon(*be[i], at))
        << ae[i]->id().name << " diverged with a disabled stamper";
    // Stamping carries no traffic: even ENABLED, every standard counter and
    // queue depth is bit-identical — the tag is pure metadata.
    EXPECT_EQ(canon(*ee[i], at), canon(*be[i], at))
        << ee[i]->id().name << " diverged with stamping enabled";
  }

  // Zero INT bytes with the bits off...
  const inband::IntStamper::Stats off = off_stamper.stats();
  EXPECT_EQ(off.pkts_seen, 0u);
  EXPECT_EQ(off.flights_started, 0u);
  EXPECT_EQ(off.hops_stamped, 0u);
  // ...and real flights with them on.
  const inband::IntStamper::Stats on = on_stamper.stats();
  EXPECT_GT(on.flights_started, 0u);
  EXPECT_GT(on.flights_harvested, 0u);
  EXPECT_GT(on.hops_stamped, on.flights_started);
}

TEST(IntStamperTest, SingleFlightWalksTheWholeChainInOrder) {
  ChainRig rig;
  inband::IntStamper stamper(inband::IntStamper::Config{1, 16, 4096});
  rig.attach(stamper);
  stamper.enable_all(true);

  // One batch, then idle ticks to drain it through to the guest socket.
  rig.pnic.offer_rx(batch(1, 100));
  for (int t = 0; t < 10; ++t) rig.tick(&stamper);

  std::vector<inband::Flight> flights = stamper.take_finished();
  ASSERT_EQ(flights.size(), 1u);
  const inband::Flight& f = flights[0];
  EXPECT_FALSE(f.dropped);
  EXPECT_GE(f.end.ns(), f.start.ns());
  std::vector<std::string> path;
  for (const inband::Hop& h : f.hops) path.push_back(h.element.name);
  EXPECT_EQ(path, (std::vector<std::string>{"pnic", "napi", "tun", "qemu-io",
                                            "vnic", "gb", "gs"}));
  for (const inband::Hop& h : f.hops) EXPECT_FALSE(h.drop_tail);
  // The hypervisor copy hop attributed io-time to its own hop.
  EXPECT_GT(f.hops[3].io_time.ns(), 0);
  // vm attribution survives into the hop stack.
  EXPECT_EQ(f.hops[2].kind, ElementKind::kTun);
  EXPECT_EQ(f.hops[2].vm, 0);
}

TEST(IntStamperTest, ExactOneInNSampling) {
  inband::IntStamper stamper(inband::IntStamper::Config{64, 16, 1 << 20});
  int slot = stamper.register_element(ElementId{"e"}, ElementKind::kPNic, -1);
  stamper.enable(slot, true);
  uint64_t tags = 0;
  // 1000 batches x 16 pkts: 16000 pkts cross 250 sample boundaries.
  for (int i = 0; i < 1000; ++i) {
    if (stamper.maybe_tag(slot, batch(1, 16), 0) != 0) ++tags;
  }
  EXPECT_EQ(tags, 250u);
  EXPECT_EQ(stamper.stats().pkts_seen, 16000u);
  EXPECT_EQ(stamper.stats().flights_started, 250u);
  // The knob is live: 1-in-1 tags every batch.
  stamper.set_sample_every(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(stamper.maybe_tag(slot, batch(1, 3), 0), 0u);
  }
}

TEST(IntStamperTest, DropTailFinalizesFlightWithMarker) {
  inband::IntStamper stamper(inband::IntStamper::Config{1, 16, 64});
  int a = stamper.register_element(ElementId{"a"}, ElementKind::kPNic, -1);
  int b = stamper.register_element(ElementId{"b"}, ElementKind::kTun, 0);
  stamper.enable_all(true);
  stamper.set_now(SimTime::millis(5));
  uint64_t tag = stamper.maybe_tag(a, batch(1, 10), 3);
  ASSERT_NE(tag, 0u);
  stamper.set_now(SimTime::millis(6));
  stamper.stamp(b, tag, 4096);     // arrival at the full queue
  stamper.mark_dropped(b, tag, 4096);
  std::vector<inband::Flight> flights = stamper.take_finished();
  ASSERT_EQ(flights.size(), 1u);
  EXPECT_TRUE(flights[0].dropped);
  ASSERT_EQ(flights[0].hops.size(), 2u);
  EXPECT_FALSE(flights[0].hops[0].drop_tail);
  EXPECT_TRUE(flights[0].hops[1].drop_tail);   // marked, not duplicated
  EXPECT_EQ(flights[0].hops[1].queue_pkts, 4096u);
  EXPECT_EQ(flights[0].end, SimTime::millis(6));
  EXPECT_EQ(stamper.stats().flights_dropped, 1u);

  // Orphaned tags (lost to merges/trims) expire instead of leaking.
  uint64_t orphan = stamper.maybe_tag(a, batch(1, 10), 0);
  ASSERT_NE(orphan, 0u);
  stamper.set_now(SimTime::millis(600));
  stamper.expire(Duration::millis(500));
  EXPECT_EQ(stamper.stats().flights_expired, 1u);
  EXPECT_TRUE(stamper.take_finished().empty());
}

// --- harvest into the StreamCache -------------------------------------------

TEST(IntHarvesterTest, WindowsLandInCacheAsInbandProvenance) {
  inband::IntStamper stamper(inband::IntStamper::Config{4, 16, 1024});
  int a = stamper.register_element(ElementId{"m0/pnic"}, ElementKind::kPNic, -1);
  int b = stamper.register_element(ElementId{"m0/vm0/tun"}, ElementKind::kTun, 0);
  stamper.enable_all(true);
  stamper.set_harvest(b, true);

  StreamCache cache;
  inband::IntHarvester::Config hcfg;
  hcfg.agent = "a0/int";
  hcfg.microburst_depth_pkts = 0;
  inband::IntHarvester harvester(&stamper, &cache, hcfg);

  stamper.set_now(SimTime::millis(50));
  for (int i = 0; i < 8; ++i) {
    uint64_t tag = stamper.maybe_tag(a, batch(1, 4), 10 + i);
    if (tag == 0) continue;
    stamper.add_io_time(tag, Duration::micros(3));
    stamper.harvest(b, tag, 200);
  }
  const SimTime w = SimTime::millis(100);
  size_t absorbed = harvester.close_window(w);
  EXPECT_EQ(absorbed, 8u);
  EXPECT_GT(harvester.stats().report_bytes, 0u);

  ASSERT_TRUE(cache.window_present("a0/int", w));
  EXPECT_EQ(cache.window_provenance("a0/int", w),
            StreamCache::Provenance::kInband);

  // The records read back through the same AgentClient interface the
  // diagnosis stack uses, in the standard attr vocabulary.
  StreamCacheAgent agent(&cache, "a0/int",
                         {ElementId{"m0/pnic"}, ElementId{"m0/vm0/tun"}});
  Result<QueryResponse> pnic_r = agent.query_attrs(
      ElementId{"m0/pnic"},
      {attr::kQueuePkts, attr::kType, inband::kIntSamples,
       inband::kIntIoTimeNs},
      w);
  ASSERT_TRUE(pnic_r.ok()) << pnic_r.status().message();
  const StatsRecord& rec = pnic_r.value().record;
  EXPECT_EQ(rec.get_or(attr::kQueuePkts, -1), 17.0);   // peak arrival depth 10..17
  EXPECT_EQ(rec.get_or(attr::kType, -1),
            static_cast<double>(static_cast<int>(ElementKind::kPNic)));
  EXPECT_EQ(rec.get_or(inband::kIntSamples, -1), 8.0);
  EXPECT_EQ(rec.get_or(inband::kIntIoTimeNs, -1), 8 * 3000.0);
  Result<QueryResponse> tun_r = agent.query_attrs(
      ElementId{"m0/vm0/tun"}, {attr::kQueuePkts, attr::kVm}, w);
  ASSERT_TRUE(tun_r.ok());
  EXPECT_EQ(tun_r.value().record.get_or(attr::kQueuePkts, -1), 200.0);
  EXPECT_EQ(tun_r.value().record.get_or(attr::kVm, -1), 0.0);
}

TEST(IntHarvesterTest, MicroburstTriggersTargetedSweepOverImplicated) {
  inband::IntStamper stamper(inband::IntStamper::Config{1, 16, 1024});
  int a = stamper.register_element(ElementId{"m0/pnic"}, ElementKind::kPNic, -1);
  int b = stamper.register_element(ElementId{"m0/vm0/tun"}, ElementKind::kTun, 0);
  int c = stamper.register_element(ElementId{"m0/vm1/tun"}, ElementKind::kTun, 1);
  stamper.enable_all(true);
  stamper.set_harvest(b, true);
  stamper.set_harvest(c, true);

  inband::IntHarvester::Config hcfg;
  hcfg.agent = "int";
  hcfg.microburst_depth_pkts = 256;
  inband::IntHarvester harvester(&stamper, nullptr, hcfg);
  std::vector<inband::IntHarvester::Microburst> bursts;
  harvester.set_on_microburst(
      [&](const inband::IntHarvester::Microburst& m) { bursts.push_back(m); });

  // Steady traffic: shallow depths everywhere -> no trigger, zero targeted
  // queries — hybrid mode is free when nothing is wrong.
  for (int i = 0; i < 5; ++i) {
    uint64_t tag = stamper.maybe_tag(a, batch(1, 1), 4);
    stamper.harvest(b, tag, 8);
  }
  harvester.close_window(SimTime::millis(100));
  EXPECT_TRUE(bursts.empty());
  EXPECT_EQ(harvester.stats().microbursts, 0u);

  // A burst inside the next window: vm0's tun sees a deep excursion, vm1
  // stays shallow.  Only vm0's tun is implicated.
  for (int i = 0; i < 3; ++i) {
    uint64_t tag = stamper.maybe_tag(a, batch(1, 1), 4);
    stamper.harvest(b, tag, 900);
  }
  uint64_t tag = stamper.maybe_tag(a, batch(1, 1), 4);
  stamper.harvest(c, tag, 12);
  harvester.close_window(SimTime::millis(200));
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].window_start, SimTime::millis(200));
  EXPECT_EQ(bursts[0].peak_depth_pkts, 900u);
  ASSERT_EQ(bursts[0].elements.size(), 1u);
  EXPECT_EQ(bursts[0].elements[0].name, "m0/vm0/tun");
  EXPECT_EQ(harvester.stats().microbursts, 1u);
}

// Hybrid wiring end to end: the microburst callback issues a real targeted
// pull over just the implicated elements via Controller::get_attr_many.
TEST(IntHybridTest, TriggerDrivesControllerScatterOverImplicatedOnly) {
  ChainRig rig;
  Agent a0("a0", 11);
  for (dp::Element* e : rig.elements()) {
    ASSERT_TRUE(a0.add_element(e).is_ok());
  }
  SimTime ctl_now;
  Controller ctl([&](Duration d) { ctl_now = ctl_now + d; return ctl_now; },
                 [&] { return ctl_now; });
  ctl.register_agent(&a0);
  for (dp::Element* e : rig.elements()) {
    ASSERT_TRUE(ctl.register_element(kTenant, e->id(), &a0).is_ok());
  }

  inband::IntStamper stamper(inband::IntStamper::Config{1, 16, 4096});
  rig.attach(stamper);
  stamper.enable_all(true);
  StreamCache cache;
  inband::IntHarvester::Config hcfg;
  hcfg.agent = "a0/int";
  hcfg.microburst_depth_pkts = 300;
  inband::IntHarvester harvester(&stamper, &cache, hcfg);
  uint64_t targeted_queries = 0;
  harvester.set_on_microburst(
      [&](const inband::IntHarvester::Microburst& m) {
        std::vector<Result<Controller::QualifiedRecord>> got = ctl.get_attr_many(
            kTenant, m.elements, {attr::kQueuePkts, attr::kDropPkts});
        for (const Result<Controller::QualifiedRecord>& r : got) {
          EXPECT_TRUE(r.ok());
          ++targeted_queries;
        }
      });

  // Steady phase: modest traffic fully drained each tick.
  for (int t = 0; t < 20; ++t) {
    rig.pnic.offer_rx(batch(1, 60));
    rig.tick(&stamper);
  }
  harvester.close_window(SimTime::millis(100));
  EXPECT_EQ(targeted_queries, 0u);

  // Burst phase: a transient host-CPU squeeze (a co-located hog's worth of
  // stolen cycles) stalls the softirq/QEMU pumps so queues back up deep,
  // then the squeeze lifts and the excursion drains — all inside one
  // window, invisible to a boundary-sampling poll.
  rig.cpu.set_capacity_per_sec(0.05);
  for (int t = 0; t < 10; ++t) {
    rig.pnic.offer_rx(batch(1, 900, 300));
    rig.tick(&stamper);
  }
  rig.cpu.set_capacity_per_sec(8.0);
  for (int t = 0; t < 40; ++t) rig.tick(&stamper);
  harvester.close_window(SimTime::millis(200));
  EXPECT_GT(harvester.stats().microbursts, 0u);
  EXPECT_GT(targeted_queries, 0u);
}

// TSan target (--gtest_filter=*Churn*): INT harvest racing agent poll
// sweeps and streaming pumps over the same cache.  Traffic is stamped in a
// single-threaded phase; the race is collection-side.
TEST(IntChurnTest, HarvestRacesPollSweepsAndStreamPumps) {
  ChainRig rig;
  Agent a0("a0", 11);
  std::vector<ElementId> ids;
  for (dp::Element* e : rig.elements()) {
    ASSERT_TRUE(a0.add_element(e).is_ok());
    ids.push_back(e->id());
  }
  inband::IntStamper stamper(inband::IntStamper::Config{2, 16, 4096});
  rig.attach(stamper);
  stamper.enable_all(true);
  for (int t = 0; t < 40; ++t) {
    rig.pnic.offer_rx(batch(1, 200));
    rig.tick(&stamper);
  }

  StreamCache cache;
  inband::IntHarvester::Config hcfg;
  hcfg.agent = "a0/int";
  inband::IntHarvester harvester(&stamper, &cache, hcfg);
  StreamPipeline pipe(&cache, nullptr);
  pipe.add_agent(&a0);

  std::atomic<int> go{0};
  std::thread harvest_thread([&] {
    ++go;
    for (int i = 0; i < 60; ++i) {
      harvester.close_window(SimTime::millis(100 + i));
    }
  });
  std::thread sweep_thread([&] {
    ++go;
    for (int i = 0; i < 60; ++i) {
      BatchResponse b = a0.query_batch(ids, SimTime::millis(100 + i));
      EXPECT_EQ(b.responses.size(), ids.size());
    }
  });
  std::thread pump_thread([&] {
    ++go;
    for (int i = 0; i < 60; ++i) {
      EXPECT_TRUE(pipe.pump(SimTime::millis(100 * (i + 1)), nullptr).is_ok());
    }
  });
  std::thread stamp_thread([&] {
    ++go;
    // Dataplane hooks racing the drain: tags opened and harvested live.
    int a = stamper.register_element(ElementId{"aux"}, ElementKind::kOther, -1);
    stamper.enable(a, true);
    stamper.set_harvest(a, true);
    for (int i = 0; i < 500; ++i) {
      uint64_t tag = stamper.maybe_tag(a, batch(2, 3), 1);
      if (tag != 0) stamper.harvest(a, tag, 2);
    }
  });
  harvest_thread.join();
  sweep_thread.join();
  pump_thread.join();
  stamp_thread.join();
  EXPECT_EQ(go.load(), 4);
  EXPECT_GT(cache.stats().frames_applied, 0u);
}

}  // namespace
}  // namespace perfsight
