// JSON export: escaping, numbers, and the report shapes dashboards consume.
#include "perfsight/json_export.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"

namespace perfsight::json {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(JsonNumberTest, IntegersPrintExactly) {
  EXPECT_EQ(number(42), "42");
  EXPECT_EQ(number(-7), "-7");
  EXPECT_EQ(number(1234567890123.0), "1234567890123");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(number(std::nan("")), "null");
  EXPECT_EQ(number(1.0 / 0.0 * 1.0), "null");
}

// Regression (%.10g bugfix): byte counters above ~1e10 — a few seconds of
// traffic at modelled 10 Gbps — lost their low digits on export.  %.17g is
// the shortest printf width guaranteed to round-trip any double exactly.
TEST(JsonNumberTest, LargeCountersRoundTripExactly) {
  // Non-integral values above 1e10: the integer fast path does not apply,
  // so these exercise the %g branch end to end.
  const double values[] = {
      98765432109.875,         // ~9.9e10 with a fractional part
      1.23456789012345e14,     // full-precision mantissa
      40271998156.03125,       // exact binary fraction above 1e10
  };
  for (double v : values) {
    std::string printed = number(v);
    EXPECT_EQ(std::strtod(printed.c_str(), nullptr), v)
        << "'" << printed << "' does not round-trip";
  }
  // The old format demonstrably loses these: %.10g of 98765432109.875 is
  // "9.876543211e+10" == 98765432110.0.
  char old_buf[64];
  std::snprintf(old_buf, sizeof(old_buf), "%.10g", 98765432109.875);
  EXPECT_NE(std::strtod(old_buf, nullptr), 98765432109.875);

  // Integral counters above 1e10 keep the plain-integer fast path.
  EXPECT_EQ(number(12500000000.0), "12500000000");
}

// Property: escape() and unescape() are exact inverses over every byte
// value 0x00..0xff, in random strings and in the worst-case string holding
// all 256 values — and the escaped form always survives the linter inside
// a quoted JSON document.
TEST(JsonEscapeTest, EscapeUnescapeRoundTripsEveryByteValue) {
  std::string all;
  for (int v = 0; v < 256; ++v) all.push_back(static_cast<char>(v));
  Pcg32 rng(4096);
  std::vector<std::string> inputs = {all, "", std::string(1, '\0')};
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    size_t len = rng.next_below(96);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.next_below(256)));
    }
    inputs.push_back(std::move(s));
  }
  for (const std::string& s : inputs) {
    const std::string esc = escape(s);
    Result<std::string> back = unescape(esc);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(back.value(), s);
    Status ok = lint("{\"k\":\"" + esc + "\"}");
    EXPECT_TRUE(ok.is_ok()) << ok.message();
  }
}

TEST(JsonEscapeTest, UnescapeRejectsDamage) {
  EXPECT_FALSE(unescape("\\").ok());          // dangling backslash
  EXPECT_FALSE(unescape("\\q").ok());         // unknown escape
  EXPECT_FALSE(unescape("\\u12").ok());       // truncated \u
  EXPECT_FALSE(unescape("\\u12zq").ok());     // bad hex digit
  EXPECT_FALSE(unescape("\\u0100").ok());     // beyond one byte
  // The full grammar is accepted, including escapes escape() never emits.
  Result<std::string> r = unescape("\\u0041\\/\\b\\f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "A/\b\f");
}

TEST(JsonRecordTest, SerializesRecord) {
  StatsRecord r;
  r.timestamp = SimTime::millis(5);
  r.element = ElementId{"m0/vm1/tun"};
  r.attrs = {{"rxPkts", 10}, {"dropPkts", 2}};
  EXPECT_EQ(to_json(r),
            "{\"timestampNs\":5000000,\"element\":\"m0/vm1/tun\","
            "\"attrs\":{\"rxPkts\":10,\"dropPkts\":2}}");
}

TEST(JsonContentionTest, SerializesReport) {
  ContentionReport r;
  r.problem_found = true;
  r.primary_location = ElementKind::kTun;
  r.spread = LossSpread::kMultiVm;
  r.is_contention = true;
  r.candidate_resources = {ResourceKind::kMemoryBandwidth};
  r.affected_vms = {0, 1};
  r.ranked.push_back({ElementId{"m0/vm0/tun"}, ElementKind::kTun, 0, 500});
  r.ranked.push_back({ElementId{"m0/pnic"}, ElementKind::kPNic, -1, 0});
  r.narrative = "loss at TUN";
  std::string j = to_json(r);
  EXPECT_NE(j.find("\"classification\":\"contention\""), std::string::npos);
  EXPECT_NE(j.find("\"memory-bandwidth\""), std::string::npos);
  EXPECT_NE(j.find("\"affectedVms\":[0,1]"), std::string::npos);
  // Zero-loss entries are omitted from rankedLosses.
  EXPECT_EQ(j.find("m0/pnic"), std::string::npos);
  EXPECT_NE(j.find("\"lossPkts\":500"), std::string::npos);
}

TEST(JsonContentionTest, HealthyReport) {
  ContentionReport r;
  std::string j = to_json(r);
  EXPECT_NE(j.find("\"problemFound\":false"), std::string::npos);
  EXPECT_NE(j.find("\"classification\":\"healthy\""), std::string::npos);
}

TEST(JsonRootCauseTest, SerializesReport) {
  RootCauseReport r;
  MbObservation o;
  o.id = ElementId{"lb"};
  o.state = MbState::kWriteBlocked;
  o.in_rate_mbps = 320.5;
  o.out_rate_mbps = 32;
  o.capacity_mbps = 100;
  r.observations.push_back(o);
  r.root_causes.push_back(ElementId{"server"});
  r.root_cause_roles.push_back(MbRole::kOverloaded);
  r.narrative = "root cause: server";
  std::string j = to_json(r);
  EXPECT_NE(j.find("\"state\":\"WriteBlocked\""), std::string::npos);
  EXPECT_NE(j.find("\"inRateMbps\":320.5"), std::string::npos);
  EXPECT_NE(j.find("{\"element\":\"server\",\"role\":\"Overloaded\"}"),
            std::string::npos);
}

// A light structural sanity check: braces and quotes balance.
TEST(JsonTest, BalancedStructure) {
  RootCauseReport r;
  r.root_causes.push_back(ElementId{"x\"y"});  // hostile name
  r.root_cause_roles.push_back(MbRole::kUnknown);
  std::string j = to_json(r);
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < j.size(); ++i) {
    char c = j[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

}  // namespace
}  // namespace perfsight::json
