// End-to-end behaviour of a single PhysicalMachine: traffic flows through
// the full element pipeline, and each induced resource shortage produces
// drops at the Table 1 location — the mechanical basis of the rule book.
#include "vm/machine.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace perfsight::vm {
namespace {

using namespace literals;

FlowSpec ingress_flow(uint32_t id, int dst_vm, uint32_t pkt_size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.label = "flow" + std::to_string(id);
  f.dst_vm = VmId{static_cast<uint32_t>(dst_vm)};
  f.direction = FlowDirection::kIngress;
  f.packet_size = pkt_size;
  return f;
}

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : sim_(Duration::millis(1)) {}

  PhysicalMachine& make_machine(dp::StackParams params = {}) {
    machine_ = std::make_unique<PhysicalMachine>("m0", params, &sim_);
    return *machine_;
  }

  // Received application bytes of vm over the run.
  uint64_t app_rx_bytes(int vm) {
    return machine_->app(vm)->stats().bytes_in.value();
  }

  sim::Simulator sim_;
  std::unique_ptr<PhysicalMachine> machine_;
};

TEST_F(MachineTest, IngressTrafficReachesSinkApp) {
  auto& m = make_machine();
  int vm0 = m.add_vm({"vm0", 1.0});
  m.set_sink_app(vm0);
  FlowSpec f = ingress_flow(1, vm0);
  m.route_flow_to_vm(f, vm0);
  m.add_ingress_source("src", f, 500_mbps);

  sim_.run_for(2_s);

  // 500 Mbps for 2 s = 125 MB end to end (pipeline latency is a few ms).
  double received = static_cast<double>(app_rx_bytes(vm0));
  EXPECT_NEAR(received, 125e6, 0.03 * 125e6);
  // The healthy path drops nothing.
  EXPECT_EQ(m.tun(vm0)->stats().drop_pkts.value(), 0u);
  EXPECT_EQ(m.pnic()->stats().drop_pkts.value(), 0u);
  EXPECT_EQ(m.backlog()->stats().drop_pkts.value(), 0u);
}

TEST_F(MachineTest, TwoVmsShareLineRateCleanly) {
  auto& m = make_machine();
  int a = m.add_vm({"vm0", 1.0});
  int b = m.add_vm({"vm1", 1.0});
  m.set_sink_app(a);
  m.set_sink_app(b);
  FlowSpec fa = ingress_flow(1, a), fb = ingress_flow(2, b);
  m.route_flow_to_vm(fa, a);
  m.route_flow_to_vm(fb, b);
  m.add_ingress_source("sa", fa, 2_gbps);
  m.add_ingress_source("sb", fb, 3_gbps);

  sim_.run_for(1_s);
  EXPECT_NEAR(static_cast<double>(app_rx_bytes(a)), 250e6, 0.05 * 250e6);
  EXPECT_NEAR(static_cast<double>(app_rx_bytes(b)), 375e6, 0.05 * 375e6);
}

TEST_F(MachineTest, IncomingOverloadDropsAtPNic) {
  auto& m = make_machine();
  int a = m.add_vm({"vm0", 1.0});
  int b = m.add_vm({"vm1", 1.0});
  m.set_sink_app(a);
  m.set_sink_app(b);
  FlowSpec fa = ingress_flow(1, a), fb = ingress_flow(2, b);
  m.route_flow_to_vm(fa, a);
  m.route_flow_to_vm(fb, b);
  // 14 Gbps offered into a 10 Gbps NIC.
  m.add_ingress_source("sa", fa, 7_gbps);
  m.add_ingress_source("sb", fb, 7_gbps);

  sim_.run_for(1_s);

  uint64_t pnic_drops = m.pnic()->stats().drop_pkts.value();
  EXPECT_GT(pnic_drops, 100000u);  // ~4 Gbps of 1500 B packets lost
  // pNIC dominates all other drop locations.
  EXPECT_GT(pnic_drops, 10 * m.tun(a)->stats().drop_pkts.value());
  EXPECT_GT(pnic_drops, 10 * m.backlog()->stats().drop_pkts.value());
}

TEST_F(MachineTest, VmCpuHogDropsOnlyThatVmsTun) {
  auto& m = make_machine();
  int victim = m.add_vm({"vm0", 1.0});
  int healthy = m.add_vm({"vm1", 1.0});
  m.set_sink_app(victim);
  m.set_sink_app(healthy);
  FlowSpec fv = ingress_flow(1, victim), fh = ingress_flow(2, healthy);
  m.route_flow_to_vm(fv, victim);
  m.route_flow_to_vm(fh, healthy);
  m.add_ingress_source("sv", fv, 500_mbps);
  m.add_ingress_source("sh", fh, 500_mbps);
  CpuHog* hog = m.add_vm_cpu_hog(victim);
  hog->set_demand_cores(1.0);

  sim_.run_for(2_s);

  EXPECT_GT(m.tun(victim)->stats().drop_pkts.value(), 1000u);
  EXPECT_EQ(m.tun(healthy)->stats().drop_pkts.value(), 0u);
  // The healthy VM's traffic is unaffected.
  EXPECT_NEAR(static_cast<double>(app_rx_bytes(healthy)), 125e6,
              0.05 * 125e6);
}

TEST_F(MachineTest, MemoryBandwidthContentionDropsAtAllTuns) {
  auto& m = make_machine();
  int a = m.add_vm({"vm0", 1.0});
  int b = m.add_vm({"vm1", 1.0});
  m.set_sink_app(a);
  m.set_sink_app(b);
  FlowSpec fa = ingress_flow(1, a), fb = ingress_flow(2, b);
  m.route_flow_to_vm(fa, a);
  m.route_flow_to_vm(fb, b);
  m.add_ingress_source("sa", fa, DataRate::gbps(1.6));
  m.add_ingress_source("sb", fb, DataRate::gbps(1.6));
  MemHog* hog = m.add_mem_hog("mem-hog");
  hog->set_demand_bytes_per_sec(24e9);  // squeeze the 25 GB/s bus

  sim_.run_for(2_s);

  EXPECT_GT(m.tun(a)->stats().drop_pkts.value(), 1000u);
  EXPECT_GT(m.tun(b)->stats().drop_pkts.value(), 1000u);
  // The hog got most of what it asked for (weights favour memcpy streams).
  EXPECT_GT(hog->achieved_bytes_per_sec(), 16e9);
}

TEST_F(MachineTest, SmallPacketEgressFloodDropsAtBacklogEnqueue) {
  dp::StackParams params;
  params.pnic_rate = 1_gbps;             // Fig. 10 machine has a 1 GbE NIC
  params.softirq_cost_per_pkt = 3.2e-6;  // slower host: ~312 Kpps per core
  params.qemu_cost_per_pkt = 0.25e-6;
  auto& m = make_machine(params);
  int rx_vm = m.add_vm({"vm0", 1.0});
  int flood_vm = m.add_vm({"vm1", 1.0});
  m.set_sink_app(rx_vm);
  FlowSpec fin = ingress_flow(1, rx_vm);
  m.route_flow_to_vm(fin, rx_vm);
  m.add_ingress_source("rx", fin, 500_mbps);

  FlowSpec flood = ingress_flow(2, 0, /*pkt_size=*/64);
  flood.direction = FlowDirection::kEgress;
  flood.src_vm = VmId{static_cast<uint32_t>(flood_vm)};
  dp::SourceApp::Config cfg;
  cfg.flow = flood;
  cfg.rate = 1_gbps;  // ~2 Mpps of 64 B packets
  cfg.cost_per_pkt = 0.05e-6;
  m.set_source_app(flood_vm, cfg);
  m.route_flow_to_wire(flood.id, "flood-out");
  // Victim rx and flood tx share a core's backlog queue.
  m.pin_flow_to_core(fin.id, 0);
  m.pin_flow_to_core(flood.id, 0);

  sim_.run_for(2_s);

  uint64_t backlog_drops = m.backlog()->stats().drop_pkts.value();
  EXPECT_GT(backlog_drops, 1000000u);
  // The victim's goodput collapses far below its 500 Mbps offer.
  EXPECT_LT(static_cast<double>(app_rx_bytes(rx_vm)), 0.35 * 125e6);
}

TEST_F(MachineTest, MemorySpacePressureShrinksTunAndDrops) {
  dp::StackParams params;
  params.tun_queue_bytes = 512 * 1024;
  auto& m = make_machine(params);
  int a = m.add_vm({"vm0", 1.0});
  m.set_sink_app(a);
  FlowSpec f = ingress_flow(1, a);
  m.route_flow_to_vm(f, a);
  m.add_ingress_source("s", f, 2_gbps);
  // Steal almost the whole buffer budget: TUN caps collapse to the floor.
  m.set_memory_pressure_bytes(params.buffer_memory_bytes - 4096);

  sim_.run_for(1_s);
  EXPECT_GT(m.tun(a)->stats().drop_pkts.value(), 1000u);
}

TEST_F(MachineTest, ForwardAppBottleneckDropsAtGuestSocket) {
  auto& m = make_machine();
  int mb = m.add_vm({"vm0", 1.0});
  FlowSpec in = ingress_flow(1, mb);
  FlowSpec out = ingress_flow(2, -1);
  dp::ForwardApp::Config cfg;
  cfg.capacity = 200_mbps;  // middlebox can only process 200 Mbps
  cfg.egress_flow = out.id;
  m.set_forward_app(mb, cfg);
  m.route_flow_to_vm(in, mb);
  m.route_flow_to_wire(out.id, "mb-out");
  m.add_ingress_source("s", in, 500_mbps);

  sim_.run_for(2_s);

  // Drops confined to this VM's guest socket (the bottleneck-middlebox
  // signature), and egress runs at the middlebox capacity.
  EXPECT_GT(m.guest_socket(mb)->stats().drop_pkts.value(), 1000u);
  double egress = static_cast<double>(m.app(mb)->stats().bytes_out.value());
  EXPECT_NEAR(egress, 50e6, 0.05 * 50e6);  // 200 Mbps * 2 s
}

TEST_F(MachineTest, EgressReachesWire) {
  auto& m = make_machine();
  int vm0 = m.add_vm({"vm0", 1.0});
  FlowSpec out = ingress_flow(5, -1);
  out.direction = FlowDirection::kEgress;
  dp::SourceApp::Config cfg;
  cfg.flow = out;
  cfg.rate = 1_gbps;
  m.set_source_app(vm0, cfg);
  m.route_flow_to_wire(out.id, "out");

  uint64_t delivered = 0;
  m.pnic()->set_tx_sink([&](PacketBatch b) { delivered += b.bytes; });
  sim_.run_for(1_s);
  EXPECT_NEAR(static_cast<double>(delivered), 125e6, 0.05 * 125e6);
}

TEST_F(MachineTest, AuxSignalsReflectLoad) {
  auto& m = make_machine();
  int vm0 = m.add_vm({"vm0", 1.0});
  FlowSpec out = ingress_flow(5, -1);
  dp::SourceApp::Config cfg;
  cfg.flow = out;
  cfg.rate = 8_gbps;
  m.set_source_app(vm0, cfg);
  m.route_flow_to_wire(out.id, "out");
  sim_.run_for(2_s);

  AuxSignals aux = m.aux_signals();
  EXPECT_GT(aux.nic_tx_throughput.gbits_per_sec(), 5.0);
  EXPECT_EQ(aux.nic_capacity.gbits_per_sec(), 10.0);
}


TEST_F(MachineTest, VnicRateCapBottlenecksOneVm) {
  auto& m = make_machine();
  VmConfig capped;
  capped.name = "vm0";
  capped.vnic_rate = 200_mbps;  // tenant bought a small vNIC
  int small = m.add_vm(capped);
  int big = m.add_vm({"vm1", 1.0});
  m.set_sink_app(small);
  m.set_sink_app(big);
  FlowSpec fs = ingress_flow(1, small), fb = ingress_flow(2, big);
  m.route_flow_to_vm(fs, small);
  m.route_flow_to_vm(fb, big);
  m.add_ingress_source("ss", fs, 500_mbps);
  m.add_ingress_source("sb", fb, 500_mbps);

  sim_.run_for(2_s);
  // The capped VM receives ~200 Mbps and its TUN drops the excess; the
  // uncapped neighbour is untouched -- the VM-bottleneck (bandwidth)
  // variant of Table 1.
  EXPECT_NEAR(static_cast<double>(app_rx_bytes(small)), 50e6, 0.08 * 50e6);
  EXPECT_NEAR(static_cast<double>(app_rx_bytes(big)), 125e6, 0.05 * 125e6);
  EXPECT_GT(m.tun(small)->stats().drop_pkts.value(), 1000u);
  EXPECT_EQ(m.tun(big)->stats().drop_pkts.value(), 0u);
}

}  // namespace
}  // namespace perfsight::vm
