#include "resources/maxmin.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace perfsight {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(MaxMinTest, UnderloadedEveryoneSatisfied) {
  std::vector<Demand> d = {{3, 1, -1}, {2, 1, -1}, {4, 1, -1}};
  auto a = weighted_maxmin(100, d);
  EXPECT_DOUBLE_EQ(a[0], 3);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 4);
}

TEST(MaxMinTest, EqualWeightsEqualShares) {
  std::vector<Demand> d = {{100, 1, -1}, {100, 1, -1}, {100, 1, -1}};
  auto a = weighted_maxmin(30, d);
  EXPECT_NEAR(a[0], 10, 1e-9);
  EXPECT_NEAR(a[1], 10, 1e-9);
  EXPECT_NEAR(a[2], 10, 1e-9);
}

TEST(MaxMinTest, SmallDemandSatisfiedExcessRedistributed) {
  // Classic max-min: {2, 8, 10} with capacity 15 -> {2, 6.5, 6.5}.
  std::vector<Demand> d = {{2, 1, -1}, {8, 1, -1}, {10, 1, -1}};
  auto a = weighted_maxmin(15, d);
  EXPECT_NEAR(a[0], 2, 1e-9);
  EXPECT_NEAR(a[1], 6.5, 1e-9);
  EXPECT_NEAR(a[2], 6.5, 1e-9);
}

TEST(MaxMinTest, WeightsBiasShares) {
  std::vector<Demand> d = {{100, 3, -1}, {100, 1, -1}};
  auto a = weighted_maxmin(40, d);
  EXPECT_NEAR(a[0], 30, 1e-9);
  EXPECT_NEAR(a[1], 10, 1e-9);
}

TEST(MaxMinTest, CapClampsAllocation) {
  std::vector<Demand> d = {{100, 10, 5}, {100, 1, -1}};
  auto a = weighted_maxmin(40, d);
  // Heavy-weight consumer capped at 5; the rest flows to the other.
  EXPECT_NEAR(a[0], 5, 1e-9);
  EXPECT_NEAR(a[1], 35, 1e-9);
}

TEST(MaxMinTest, ZeroCapacity) {
  std::vector<Demand> d = {{10, 1, -1}};
  auto a = weighted_maxmin(0, d);
  EXPECT_DOUBLE_EQ(a[0], 0);
}

TEST(MaxMinTest, EmptyDemands) {
  EXPECT_TRUE(weighted_maxmin(10, {}).empty());
}

TEST(MaxMinTest, ZeroAndNegativeDemandsGetNothing) {
  std::vector<Demand> d = {{0, 1, -1}, {-5, 1, -1}, {10, 1, -1}};
  auto a = weighted_maxmin(6, d);
  EXPECT_DOUBLE_EQ(a[0], 0);
  EXPECT_DOUBLE_EQ(a[1], 0);
  EXPECT_NEAR(a[2], 6, 1e-9);
}

// Property sweep: random demand sets must satisfy the allocation invariants.
class MaxMinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinPropertyTest, Invariants) {
  Pcg32 rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    size_t n = 1 + rng.next_below(12);
    double capacity = rng.uniform(0.0, 100.0);
    std::vector<Demand> d(n);
    double total_want = 0;
    for (auto& dem : d) {
      dem.amount = rng.uniform(0.0, 40.0);
      dem.weight = rng.uniform(0.1, 5.0);
      dem.cap = rng.next_below(3) == 0 ? rng.uniform(0.0, 30.0) : -1.0;
      double w = dem.amount;
      if (dem.cap >= 0 && dem.cap < w) w = dem.cap;
      total_want += w;
    }
    auto a = weighted_maxmin(capacity, d);
    ASSERT_EQ(a.size(), n);
    // (1) capacity never exceeded
    EXPECT_LE(sum(a), capacity + 1e-6);
    for (size_t i = 0; i < n; ++i) {
      // (2) nobody gets more than min(demand, cap), nobody gets < 0
      double lim = d[i].amount;
      if (d[i].cap >= 0 && d[i].cap < lim) lim = d[i].cap;
      EXPECT_LE(a[i], lim + 1e-6);
      EXPECT_GE(a[i], -1e-9);
    }
    // (3) work conserving
    EXPECT_NEAR(sum(a), std::min(total_want, capacity), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// Max-min fairness: among unsatisfied consumers, per-weight shares equal.
TEST(MaxMinTest, UnsatisfiedConsumersGetEqualPerWeightShares) {
  std::vector<Demand> d = {{100, 2, -1}, {100, 1, -1}, {1, 1, -1}};
  auto a = weighted_maxmin(31, d);
  EXPECT_NEAR(a[2], 1, 1e-9);  // tiny demand satisfied
  EXPECT_NEAR(a[0] / 2.0, a[1] / 1.0, 1e-9);
  EXPECT_NEAR(a[0] + a[1], 30, 1e-9);
}

}  // namespace
}  // namespace perfsight
