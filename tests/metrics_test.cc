// Metrics exposition tests: histogram mechanics, Prometheus text rendering,
// agent scraping, and the diagnosis self-profiling instruments.
#include <gtest/gtest.h>

#include <string>

#include "cluster/deployment.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/hotpath.h"
#include "perfsight/metrics.h"
#include "perfsight/monitor.h"
#include "perfsight/trace.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight {
namespace {

TEST(LatencyHistogramTest, BucketsCountAndSum) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.5), 0);

  h.observe(0.5e-6);  // <= 1us -> bucket 0
  h.observe(2e-3);    // <= 4ms -> bucket 6
  h.observe(100.0);   // beyond the last bound -> +Inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 100.0 + 2e-3 + 0.5e-6, 1e-9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(6), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(LatencyHistogramTest, QuantileFollowsBucketBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.observe(2e-6);   // bucket le=4e-6
  for (int i = 0; i < 10; ++i) h.observe(0.1);    // bucket le=256e-3
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.99), 256e-3);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndRendered) {
  MetricsRegistry reg;
  reg.gauge("ps_queue_depth", "Current depth", "queue=\"tun0\"").set(17);
  reg.counter("ps_alerts_total", "Alerts fired").add(3);
  // Same (name, labels) returns the same instrument.
  reg.gauge("ps_queue_depth", "Current depth", "queue=\"tun0\"").add(1);

  std::string text = reg.expose(SimTime::millis(0));
  EXPECT_NE(text.find("# HELP ps_queue_depth Current depth"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ps_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("ps_queue_depth{queue=\"tun0\"} 18"), std::string::npos);
  EXPECT_NE(text.find("ps_alerts_total 3"), std::string::npos);
  // Flight-recorder health is always present.
  EXPECT_NE(text.find("perfsight_trace_events_total"), std::string::npos);
  EXPECT_NE(text.find("perfsight_trace_dropped_events_total"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ExposesPerRingOccupancyWhenRingsExist) {
  // No rings: the per-ring families stay out of the exposition entirely
  // (keeps the no-trace scrape shape stable).
  {
    MetricsRegistry reg;
    std::string text = reg.expose(SimTime::millis(0));
    EXPECT_EQ(text.find("perfsight_trace_ring_events"), std::string::npos);
  }

  ScopedTraceRecorder tracing(/*ring_capacity=*/4);
  for (int i = 0; i < 6; ++i) {  // 2 overwrites on "hot", none on "cold"
    TraceRecorder::global().record(ElementId{"hot"}, SimTime::millis(i),
                                   TraceEventKind::kDrop, i);
  }
  TraceRecorder::global().record(ElementId{"cold"}, SimTime::millis(0),
                                 TraceEventKind::kDrop, 0);

  MetricsRegistry reg;
  std::string text = reg.expose(SimTime::millis(10));
  EXPECT_NE(text.find("perfsight_trace_ring_events{element=\"hot\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("perfsight_trace_ring_capacity{element=\"hot\"} 4"),
            std::string::npos);
  EXPECT_NE(
      text.find("perfsight_trace_ring_dropped_events_total{element=\"hot\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("perfsight_trace_ring_dropped_events_total{element=\"cold\"} 0"),
      std::string::npos);
  // The aggregate counters agree with the per-ring breakdown.
  EXPECT_NE(text.find("perfsight_trace_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("perfsight_trace_dropped_events_total 2"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ScrapesAgentsAndChannelHistograms) {
  Agent agent("agent-m0");
  ElementStats stats;
  stats.pkts_in.add(42);
  HotpathStatsSource src(ElementId{"mb0"}, &stats);
  ASSERT_TRUE(agent.add_element(&src).is_ok());

  MetricsRegistry reg;
  reg.add_agent(&agent);
  ASSERT_EQ(reg.num_agents(), 1u);

  std::string text = reg.expose(SimTime::seconds(1));
  // Element gauges travelled the agent's channel...
  EXPECT_NE(text.find("perfsight_element_stat{agent=\"agent-m0\","
                      "element=\"mb0\",attr=\"rxPkts\"} 42"),
            std::string::npos)
      << text;
  // ...so the scrape itself fed the per-channel latency histogram.
  EXPECT_NE(text.find("perfsight_agent_channel_latency_seconds_bucket{"
                      "agent=\"agent-m0\",channel="),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("perfsight_agent_channel_latency_seconds_count"),
            std::string::npos);
  EXPECT_GE(agent.channel_latency(ChannelKind::kMbSocket).count(), 1u);
}

TEST(MetricsRegistryTest, DiagnosisLatencyHistogramObservesRuns) {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine machine("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  for (int i = 0; i < 2; ++i) {
    int v = machine.add_vm({"vm" + std::to_string(i), 1.0});
    machine.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    machine.route_flow_to_vm(f, v);
    machine.add_ingress_source("s" + std::to_string(i), f,
                               DataRate::gbps(1.6));
  }
  machine.add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);
  Agent* agent = dep.add_agent("agent-m0");
  dep.attach(&machine, agent);
  const TenantId tenant{1};
  ASSERT_TRUE(dep.assign(tenant, machine.tun(0)->id(), agent).is_ok());
  sim.run_for(Duration::seconds(1));

  ContentionDetector detector(dep.controller(), RuleBook::standard());
  detector.set_loss_threshold(100);
  detector.set_metrics(dep.metrics());
  const Duration window = Duration::seconds(1);
  (void)detector.diagnose(tenant, window, machine.aux_signals());

  LatencyHistogram& h = dep.metrics()->histogram(
      "perfsight_contention_diagnosis_seconds",
      "End-to-end Algorithm 1 cost: measurement window plus modelled "
      "channel time");
  EXPECT_EQ(h.count(), 1u);
  // Cost = sweep window + modelled channel time, so it exceeds the window.
  EXPECT_GT(h.sum(), window.sec());

  std::string text = dep.metrics()->expose(sim.now());
  EXPECT_NE(text.find("perfsight_contention_diagnosis_seconds_count 1"),
            std::string::npos)
      << text;
}

TEST(PromEscapeTest, EscapesLabelValues) {
  EXPECT_EQ(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

}  // namespace
}  // namespace perfsight
