// Monitor edge cases: empty and single-point series, unwatched keys, and
// gap tolerance when an element disappears (and returns) mid-run.
#include <gtest/gtest.h>

#include "perfsight/agent.h"
#include "perfsight/controller.h"
#include "perfsight/hotpath.h"
#include "perfsight/monitor.h"

namespace perfsight {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : controller_([this](Duration d) { now_ = now_ + d; return now_; },
                    [this] { return now_; }),
        agent_("agent-a"),
        source_(ElementId{"mb0"}, &stats_) {
    EXPECT_TRUE(agent_.add_element(&source_).is_ok());
    controller_.register_agent(&agent_);
    EXPECT_TRUE(controller_.register_element(tenant_, source_.id(), &agent_)
                    .is_ok());
  }

  SimTime now_;
  Controller controller_;
  Agent agent_;
  ElementStats stats_;
  HotpathStatsSource source_;
  const TenantId tenant_{1};
};

TEST_F(MonitorTest, RatesOnEmptyAndSinglePointSeriesAreEmpty) {
  Monitor mon(&controller_, tenant_);
  mon.watch(source_.id(), attr::kRxPkts);

  // Watched but never sampled.
  EXPECT_TRUE(mon.values(source_.id(), attr::kRxPkts).empty());
  EXPECT_TRUE(mon.rates(source_.id(), attr::kRxPkts).empty());
  EXPECT_DOUBLE_EQ(mon.rates(source_.id(), attr::kRxPkts).last(), 0);

  // One sample: a value point exists, but a rate needs two.
  mon.sample();
  EXPECT_EQ(mon.values(source_.id(), attr::kRxPkts).points.size(), 1u);
  EXPECT_TRUE(mon.rates(source_.id(), attr::kRxPkts).empty());
}

TEST_F(MonitorTest, UnwatchedKeyReturnsEmptySeries) {
  Monitor mon(&controller_, tenant_);
  mon.watch(source_.id(), attr::kRxPkts);
  mon.sample();

  // Different attribute and different element: both unwatched.
  EXPECT_TRUE(mon.values(source_.id(), attr::kDropPkts).empty());
  EXPECT_TRUE(mon.values(ElementId{"nope"}, attr::kRxPkts).empty());
  EXPECT_TRUE(mon.rates(ElementId{"nope"}, attr::kRxPkts).empty());
  EXPECT_EQ(mon.num_watches(), 1u);
}

TEST_F(MonitorTest, ElementDisappearingMidRunLeavesGapNotFailure) {
  Monitor mon(&controller_, tenant_);
  mon.watch(source_.id(), attr::kRxPkts);

  stats_.pkts_in.add(100);
  mon.sample();
  now_ = now_ + Duration::seconds(1);
  stats_.pkts_in.add(100);
  mon.sample();
  ASSERT_EQ(mon.values(source_.id(), attr::kRxPkts).points.size(), 2u);

  // The element goes away (VM teardown): sampling tolerates the gap.
  ASSERT_TRUE(agent_.remove_element(source_.id()).is_ok());
  EXPECT_FALSE(agent_.has_element(source_.id()));
  now_ = now_ + Duration::seconds(1);
  mon.sample();
  EXPECT_EQ(mon.values(source_.id(), attr::kRxPkts).points.size(), 2u);

  // It returns (migration back): points resume, and the rate across the
  // gap is computed from actual timestamps, not assumed ticks.
  ASSERT_TRUE(agent_.add_element(&source_).is_ok());
  now_ = now_ + Duration::seconds(1);
  stats_.pkts_in.add(300);
  mon.sample();
  Monitor::Series values = mon.values(source_.id(), attr::kRxPkts);
  ASSERT_EQ(values.points.size(), 3u);

  Monitor::Series rates = mon.rates(source_.id(), attr::kRxPkts);
  ASSERT_EQ(rates.points.size(), 2u);
  EXPECT_DOUBLE_EQ(rates.points[0].value, 100.0);  // 100 pkts over 1 s
  EXPECT_DOUBLE_EQ(rates.points[1].value, 150.0);  // 300 pkts over 2 s gap
}

TEST_F(MonitorTest, CounterResetRestartsRateSeriesWithoutNegativeSpike) {
  Monitor mon(&controller_, tenant_);
  mon.watch(source_.id(), attr::kRxPkts);

  stats_.pkts_in.add(1000);
  mon.sample();
  now_ = now_ + Duration::seconds(1);
  stats_.pkts_in.add(100);
  mon.sample();

  // The element is torn down and re-registered with fresh (zeroed)
  // counters — the classic reset that used to produce a huge negative rate.
  ASSERT_TRUE(agent_.remove_element(source_.id()).is_ok());
  ElementStats fresh;
  HotpathStatsSource reborn(source_.id(), &fresh);
  ASSERT_TRUE(agent_.add_element(&reborn).is_ok());

  now_ = now_ + Duration::seconds(1);
  fresh.pkts_in.add(50);
  mon.sample();
  now_ = now_ + Duration::seconds(1);
  fresh.pkts_in.add(70);
  mon.sample();

  ASSERT_EQ(mon.values(source_.id(), attr::kRxPkts).points.size(), 4u);
  Monitor::Series rates = mon.rates(source_.id(), attr::kRxPkts);
  // Three intervals, but the reset interval (1100 -> 50) yields no point:
  // the series restarts at the post-reset sample.
  ASSERT_EQ(rates.points.size(), 2u);
  EXPECT_DOUBLE_EQ(rates.points[0].value, 100.0);  // pre-reset
  EXPECT_DOUBLE_EQ(rates.points[1].value, 70.0);   // post-reset
  for (const Monitor::Point& p : rates.points) EXPECT_GE(p.value, 0.0);
}

TEST_F(MonitorTest, RemoveElementValidation) {
  EXPECT_FALSE(agent_.remove_element(ElementId{"ghost"}).is_ok());
  EXPECT_TRUE(agent_.remove_element(source_.id()).is_ok());
  // Double removal fails too.
  EXPECT_FALSE(agent_.remove_element(source_.id()).is_ok());
  EXPECT_TRUE(agent_.element_ids().empty());
}

}  // namespace
}  // namespace perfsight
