// The parallel collection runtime: batched/parallel agent polling must be
// byte-identical to the sequential path, and the shared state it touches
// must be thread-safe (these tests are the ThreadSanitizer targets in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/hotpath.h"
#include "perfsight/monitor.h"
#include "perfsight/trace.h"

namespace perfsight {
namespace {

// A scriptable element: tests bump its counters between samples.
class FakeSource : public StatsSource {
 public:
  FakeSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs;
    return r;
  }

  std::vector<Attr> attrs;

 private:
  ElementId id_;
  ChannelKind kind_;
};

std::vector<std::unique_ptr<FakeSource>> make_sources(size_t n) {
  std::vector<std::unique_ptr<FakeSource>> out;
  const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                               ChannelKind::kNetDeviceFile,
                               ChannelKind::kOvsChannel};
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<FakeSource>("m0/el" + std::to_string(i),
                                          kinds[i % 4]);
    s->attrs = {{attr::kRxPkts, static_cast<double>(100 * i)},
                {attr::kTxPkts, static_cast<double>(90 * i)}};
    out.push_back(std::move(s));
  }
  return out;
}

void register_all(Agent& agent,
                  const std::vector<std::unique_ptr<FakeSource>>& sources) {
  for (const auto& s : sources) {
    ASSERT_TRUE(agent.add_element(s.get()).is_ok());
  }
}

TEST(ParallelPollTest, PollAllParallelIsByteIdenticalToSequential) {
  auto sources = make_sources(12);
  // Same name + seed: both agents consume their RNG streams identically
  // because poll_all draws jitter in element-id order before fanning out.
  Agent seq("a0", 7), par("a0", 7);
  register_all(seq, sources);
  register_all(par, sources);

  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    SimTime now = SimTime::millis(round);
    std::vector<QueryResponse> s = seq.poll_all(now);
    std::vector<QueryResponse> p = par.poll_all(now, &pool);
    ASSERT_EQ(s.size(), p.size());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].record.element, p[i].record.element);
      EXPECT_EQ(s[i].response_time.ns(), p[i].response_time.ns());
      EXPECT_EQ(to_wire(s[i].record), to_wire(p[i].record));
    }
  }
  // Self-profiling merged deterministically too.
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    ChannelKind kind = static_cast<ChannelKind>(k);
    EXPECT_EQ(seq.channel_latency(kind).count(),
              par.channel_latency(kind).count());
    EXPECT_DOUBLE_EQ(seq.channel_latency(kind).sum(),
                     par.channel_latency(kind).sum());
  }
}

TEST(ParallelPollTest, QueryBatchAmortizesOneTripPerChannelKind) {
  Agent agent("a0");
  // Zero jitter so the modelled delays are exact.
  agent.set_latency(ChannelKind::kProcFs,
                    {Duration::micros(100), Duration::nanos(0)});
  agent.set_latency(ChannelKind::kMbSocket,
                    {Duration::micros(200), Duration::nanos(0)});
  FakeSource p1("p1", ChannelKind::kProcFs), p2("p2", ChannelKind::kProcFs);
  FakeSource p3("p3", ChannelKind::kProcFs), m1("m1", ChannelKind::kMbSocket);
  FakeSource m2("m2", ChannelKind::kMbSocket);
  for (auto* s : {&p1, &p2, &p3, &m1, &m2}) {
    ASSERT_TRUE(agent.add_element(s).is_ok());
  }

  BatchResponse batch = agent.query_batch(
      {ElementId{"p1"}, ElementId{"p2"}, ElementId{"p3"}, ElementId{"m1"},
       ElementId{"m2"}},
      SimTime::millis(1));
  ASSERT_EQ(batch.responses.size(), 5u);
  EXPECT_EQ(batch.unknown_ids, 0u);
  // One round trip per kind, not per element: 100us + 200us.
  EXPECT_EQ(batch.channel_time.us(), 300);
  // Responses ordered by id; every element of a kind shares its trip.
  EXPECT_EQ(batch.responses[0].record.element.name, "m1");
  EXPECT_EQ(batch.responses[0].response_time.us(), 200);
  EXPECT_EQ(batch.responses[2].record.element.name, "p1");
  EXPECT_EQ(batch.responses[2].response_time.us(), 100);
  // The histograms saw one observe per kind (the trips actually paid).
  EXPECT_EQ(agent.channel_latency(ChannelKind::kProcFs).count(), 1u);
  EXPECT_EQ(agent.channel_latency(ChannelKind::kMbSocket).count(), 1u);

  // The parallel batch matches the sequential one on a twin agent.
  Agent twin("a0");
  twin.set_latency(ChannelKind::kProcFs,
                   {Duration::micros(100), Duration::nanos(0)});
  twin.set_latency(ChannelKind::kMbSocket,
                   {Duration::micros(200), Duration::nanos(0)});
  for (auto* s : {&p1, &p2, &p3, &m1, &m2}) {
    ASSERT_TRUE(twin.add_element(s).is_ok());
  }
  ThreadPool pool(4);
  BatchResponse par = twin.query_batch(
      {ElementId{"p1"}, ElementId{"p2"}, ElementId{"p3"}, ElementId{"m1"},
       ElementId{"m2"}},
      SimTime::millis(1), &pool);
  ASSERT_EQ(par.responses.size(), batch.responses.size());
  for (size_t i = 0; i < par.responses.size(); ++i) {
    EXPECT_EQ(to_wire(par.responses[i].record),
              to_wire(batch.responses[i].record));
    EXPECT_EQ(par.responses[i].response_time.ns(),
              batch.responses[i].response_time.ns());
  }
}

TEST(ParallelPollTest, QueryBatchCountsUnknownIds) {
  Agent agent("a0");
  FakeSource s("known", ChannelKind::kProcFs);
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  BatchResponse batch = agent.query_batch(
      {ElementId{"known"}, ElementId{"ghost1"}, ElementId{"ghost2"}},
      SimTime{});
  EXPECT_EQ(batch.responses.size(), 1u);
  EXPECT_EQ(batch.unknown_ids, 2u);
}

// TSan target: a poll sweep racing element churn and cached queries must
// not corrupt agent state.  (Removal only deregisters — sources outlive the
// sweep by contract.)
TEST(ParallelPollTest, ConcurrentPollAllAndRemoveElement) {
  auto sources = make_sources(16);
  Agent agent("a0");
  register_all(agent, sources);
  ThreadPool pool(4);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Repeatedly deregister and re-register the same elements.
    while (!stop.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < 4; ++i) {
        (void)agent.remove_element(sources[i]->id());
        (void)agent.add_element(sources[i].get());
      }
    }
  });
  std::thread cached([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)agent.query_cached(sources[8]->id(), SimTime::millis(1),
                               Duration::millis(100));
    }
  });
  for (int round = 0; round < 200; ++round) {
    std::vector<QueryResponse> out = agent.poll_all(SimTime::millis(round),
                                                    &pool);
    // Elements not mid-churn are always present.
    EXPECT_GE(out.size(), 12u);
    EXPECT_LE(out.size(), 16u);
  }
  stop.store(true);
  churn.join();
  cached.join();
  EXPECT_GE(agent.cache_hits(), 1u);
}

class ParallelRig {
 public:
  explicit ParallelRig(size_t elements)
      : controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }),
        agent_("agent-a", 42),
        sources_(make_sources(elements)) {
    for (const auto& s : sources_) {
      EXPECT_TRUE(agent_.add_element(s.get()).is_ok());
    }
    controller_.register_agent(&agent_);
    for (const auto& s : sources_) {
      EXPECT_TRUE(
          controller_.register_element(tenant_, s->id(), &agent_).is_ok());
      controller_.register_stack_element(&agent_, s->id());
    }
  }

  SimTime advance(Duration d) {
    now_ = now_ + d;
    // Counters move while time passes, like a live dataplane.
    for (auto& s : sources_) {
      s->attrs[0].value += 1000;  // rxPkts
      s->attrs[1].value += 900;   // txPkts -> every element "loses" 100
    }
    return now_;
  }

  SimTime now_;
  Controller controller_;
  Agent agent_;
  std::vector<std::unique_ptr<FakeSource>> sources_;
  const TenantId tenant_{1};
};

TEST(ParallelMonitorTest, ParallelSampleMatchesSequentialGolden) {
  ParallelRig seq_rig(8), par_rig(8);
  Monitor seq_mon(&seq_rig.controller_, seq_rig.tenant_);
  Monitor par_mon(&par_rig.controller_, par_rig.tenant_);
  for (const auto& s : seq_rig.sources_) {
    seq_mon.watch(s->id(), attr::kRxPkts);
    par_mon.watch(s->id(), attr::kRxPkts);
  }

  ThreadPool pool(4);
  for (int tick = 0; tick < 5; ++tick) {
    seq_mon.sample();
    par_mon.sample(&pool);
    seq_rig.advance(Duration::seconds(1));
    par_rig.advance(Duration::seconds(1));
  }

  for (const auto& s : seq_rig.sources_) {
    const Monitor::Series& a = seq_mon.values(s->id(), attr::kRxPkts);
    const Monitor::Series& b = par_mon.values(s->id(), attr::kRxPkts);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].t, b.points[i].t);
      EXPECT_DOUBLE_EQ(a.points[i].value, b.points[i].value);
    }
  }
}

TEST(ParallelContentionTest, ParallelDiagnosisIsByteIdenticalToSequential) {
  ParallelRig seq_rig(10), par_rig(10);
  ContentionDetector seq_det(&seq_rig.controller_, RuleBook::standard());
  ContentionDetector par_det(&par_rig.controller_, RuleBook::standard());
  ThreadPool pool(4);
  par_det.set_pool(&pool);

  ContentionReport a = seq_det.diagnose(seq_rig.tenant_, Duration::seconds(1));
  ContentionReport b = par_det.diagnose(par_rig.tenant_, Duration::seconds(1));
  EXPECT_EQ(to_text(a), to_text(b));
  EXPECT_EQ(a.ranked.size(), b.ranked.size());
  EXPECT_EQ(a.problem_found, b.problem_found);
}

TEST(ParallelMetricsTest, ParallelExposeIsByteIdenticalToSequential) {
  auto sources = make_sources(6);
  std::vector<std::unique_ptr<Agent>> seq_agents, par_agents;
  MetricsRegistry seq_reg, par_reg;
  for (int a = 0; a < 4; ++a) {
    seq_agents.push_back(
        std::make_unique<Agent>("agent-" + std::to_string(a), a + 1));
    par_agents.push_back(
        std::make_unique<Agent>("agent-" + std::to_string(a), a + 1));
    for (const auto& s : sources) {
      ASSERT_TRUE(seq_agents.back()->add_element(s.get()).is_ok());
      ASSERT_TRUE(par_agents.back()->add_element(s.get()).is_ok());
    }
    seq_reg.add_agent(seq_agents.back().get());
    par_reg.add_agent(par_agents.back().get());
  }
  ThreadPool pool(4);
  par_reg.set_pool(&pool);

  std::string a = seq_reg.expose(SimTime::seconds(1));
  std::string b = par_reg.expose(SimTime::seconds(1));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("perfsight_element_stat"), std::string::npos);
}

TEST(CacheHitTraceTest, CachedQueryEmitsZeroLatencyEvent) {
  ScopedTraceRecorder scoped;
  Agent agent("a0");
  FakeSource s("e", ChannelKind::kNetDeviceFile);
  s.attrs = {{attr::kRxPkts, 1}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());

  ASSERT_TRUE(agent.query_cached(ElementId{"e"}, SimTime::millis(0),
                                 Duration::millis(100))
                  .ok());
  ASSERT_TRUE(agent.query_cached(ElementId{"e"}, SimTime::millis(50),
                                 Duration::millis(100))
                  .ok());
  ASSERT_EQ(agent.cache_hits(), 1u);

  // The timeline shows the miss (issued+completed) AND the hit: cached
  // diagnosis queries are no longer invisible to the flight recorder.
  size_t hits = 0, completed = 0;
  for (const TraceEvent& e :
       scoped.recorder().events_for(ElementId{"e"})) {
    if (e.kind == TraceEventKind::kAgentCacheHit) {
      ++hits;
      EXPECT_EQ(e.value, 0);  // zero channel latency
      EXPECT_EQ(e.t, SimTime::millis(50));
    }
    if (e.kind == TraceEventKind::kAgentQueryCompleted) ++completed;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(completed, 1u);
  EXPECT_STREQ(to_string(TraceEventKind::kAgentCacheHit), "agent_cache_hit");
}

}  // namespace
}  // namespace perfsight
