// PNic model: line-rate admission (proportional across senders), DMA-ring
// overflow, tx-ring draining, and the drop accounting behind the
// incoming/outgoing-bandwidth rule-book rows.
#include "dataplane/pnic.h"

#include <gtest/gtest.h>

namespace perfsight::dp {
namespace {

using namespace literals;

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * size};
}

const SimTime kNow;
const Duration kTick = Duration::millis(1);

TEST(PNicTest, AdmitsWithinLineRate) {
  PNic nic(ElementId{"pnic"}, {1_gbps, 4096, 4096});
  // 1 Gbps / 1ms tick = 125000 bytes = 83 full packets.
  nic.offer_rx(batch(1, 80));
  nic.step(kNow, kTick);  // admits staged offers
  EXPECT_EQ(nic.stats().pkts_in.value(), 80u);
  EXPECT_EQ(nic.stats().drop_pkts.value(), 0u);
  PacketBatch got = nic.fetch_rx(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(got.packets, 80u);
}

TEST(PNicTest, ClampsBeyondLineRateProportionally) {
  PNic nic(ElementId{"pnic"}, {1_gbps, 4096, 4096});
  nic.step(kNow, kTick);
  // Two senders offer 120 packets each = 360000 bytes against a 125000
  // budget: both should be cut to ~41-42 packets, not first-come-wins.
  nic.offer_rx(batch(1, 120));
  nic.offer_rx(batch(2, 120));
  nic.step(kNow + kTick, kTick);
  uint64_t in_pkts = nic.stats().pkts_in.value();
  EXPECT_NEAR(static_cast<double>(in_pkts), 83, 3);
  EXPECT_NEAR(static_cast<double>(nic.stats().drop_pkts.value()), 240 - 83, 3);
  // Both flows survive in roughly equal measure.
  PacketBatch a = nic.fetch_rx(UINT64_MAX, UINT64_MAX);
  PacketBatch b = nic.fetch_rx(UINT64_MAX, UINT64_MAX);
  EXPECT_NEAR(static_cast<double>(a.packets),
              static_cast<double>(b.packets), 3);
}

TEST(PNicTest, RingOverflowWhenHostIsSlow) {
  PNic nic(ElementId{"pnic"}, {10_gbps, /*rx_ring=*/100, 4096});
  for (int tick = 0; tick < 5; ++tick) {
    nic.offer_rx(batch(1, 80));
    nic.step(kNow, kTick);
    // Nobody polls the ring.
  }
  EXPECT_EQ(nic.rx_queued_packets(), 100u);
  EXPECT_GT(nic.rx_dropped_packets(), 0u);
  // All drops visible through the standard counter too.
  EXPECT_EQ(nic.stats().drop_pkts.value(), nic.rx_dropped_packets());
}

TEST(PNicTest, TxDrainsAtLineRate) {
  PNic nic(ElementId{"pnic"}, {1_gbps, 4096, 4096});
  uint64_t delivered_pkts = 0;
  nic.set_tx_sink([&](PacketBatch b) { delivered_pkts += b.packets; });
  nic.accept(batch(7, 1000));  // ~12 ticks of backlog at 1 Gbps
  for (int tick = 0; tick < 6; ++tick) nic.step(kNow, kTick);
  // 6 ticks * 83 pkts.
  EXPECT_NEAR(static_cast<double>(delivered_pkts), 500, 10);
  for (int tick = 0; tick < 10; ++tick) nic.step(kNow, kTick);
  EXPECT_EQ(delivered_pkts, 1000u);
  EXPECT_EQ(nic.tx_wire_bytes(), 1000u * 1500u);
}

TEST(PNicTest, TxRingOverflowIsOutgoingDrop) {
  PNic nic(ElementId{"pnic"}, {1_gbps, 4096, /*tx_ring=*/100});
  nic.accept(batch(7, 250));
  EXPECT_EQ(nic.tx_dropped_packets(), 150u);
  StatsRecord r = nic.collect(kNow);
  EXPECT_EQ(r.get("txDropPkts"), 150.0);
  EXPECT_EQ(r.get("rxDropPkts"), 0.0);
}

TEST(PNicTest, CapacityExportedForDiagnosis) {
  PNic nic(ElementId{"pnic"}, {10_gbps, 4096, 4096});
  StatsRecord r = nic.collect(kNow);
  EXPECT_EQ(r.get(attr::kCapacityMbps), 10000.0);
}

TEST(PNicTest, FetchBudgetsRespected) {
  PNic nic(ElementId{"pnic"}, {10_gbps, 4096, 4096});
  nic.offer_rx(batch(1, 200));
  nic.step(kNow, kTick);
  PacketBatch got = nic.fetch_rx(50, UINT64_MAX);
  EXPECT_EQ(got.packets, 50u);
  got = nic.fetch_rx(UINT64_MAX, 30000);  // 20 packets' worth
  EXPECT_EQ(got.packets, 20u);
}

TEST(PNicTest, NoCarryOfUnusedLineBudget) {
  PNic nic(ElementId{"pnic"}, {1_gbps, 4096, 4096});
  // Idle ticks must not bank budget for a later burst.
  for (int i = 0; i < 10; ++i) nic.step(kNow, kTick);
  nic.offer_rx(batch(1, 200));  // 300000 bytes vs one tick's 125000
  nic.step(kNow, kTick);
  EXPECT_NEAR(static_cast<double>(nic.stats().pkts_in.value()), 83, 3);
}

}  // namespace
}  // namespace perfsight::dp
