#include "resources/pool.h"

#include <gtest/gtest.h>

#include "resources/buffer_space.h"

namespace perfsight {
namespace {

const Duration kTick = Duration::millis(1);

// Steps the pool through `n` ticks with a per-tick consumer action.
template <typename Fn>
void run_ticks(ResourcePool& pool, int n, Fn&& per_tick) {
  SimTime t;
  for (int i = 0; i < n; ++i) {
    pool.step(t, kTick);
    per_tick(i);
    t = t + kTick;
  }
}

TEST(PoolTest, SingleConsumerGetsDemand) {
  ResourcePool pool("cpu", 8.0);  // 8 cores
  auto c = pool.add_consumer({"vm0", 1.0, -1.0});
  double granted = 0;
  run_ticks(pool, 5, [&](int) { granted = pool.request(c, 0.004); });
  EXPECT_NEAR(granted, 0.004, 1e-12);  // 4 cores' worth per ms, available
}

TEST(PoolTest, CapLimitsConsumer) {
  ResourcePool pool("cpu", 8.0);
  auto c = pool.add_consumer({"vm0", 1.0, 1.0});  // 1-vCPU cap
  double granted = 0;
  run_ticks(pool, 5, [&](int) { granted = pool.request(c, 0.004); });
  // Cap = 1 core * 1ms = 0.001 per tick even though the pool is idle.
  EXPECT_NEAR(granted, 0.001, 1e-12);
}

TEST(PoolTest, OversubscriptionConvergesToFairShares) {
  ResourcePool pool("cpu", 2.0);
  auto a = pool.add_consumer({"a", 1.0, -1.0});
  auto b = pool.add_consumer({"b", 1.0, -1.0});
  double ga = 0, gb = 0;
  run_ticks(pool, 20, [&](int) {
    ga = pool.request(a, 0.004);  // both want 4 cores' worth
    gb = pool.request(b, 0.004);
  });
  // 2 cores split evenly: 0.001 each per 1ms tick.
  EXPECT_NEAR(ga, 0.001, 1e-4);
  EXPECT_NEAR(gb, 0.001, 1e-4);
  EXPECT_LE(ga + gb, 0.002 + 1e-9);
}

TEST(PoolTest, WeightsBiasShares) {
  ResourcePool pool("bus", 10.0);
  auto heavy = pool.add_consumer({"hog", 4.0, -1.0});
  auto light = pool.add_consumer({"net", 1.0, -1.0});
  double gh = 0, gl = 0;
  run_ticks(pool, 20, [&](int) {
    gh = pool.request(heavy, 1.0);
    gl = pool.request(light, 1.0);
  });
  EXPECT_NEAR(gh / gl, 4.0, 0.05);
}

TEST(PoolTest, WorkConservingSpareLending) {
  ResourcePool pool("cpu", 2.0);
  auto a = pool.add_consumer({"a", 1.0, -1.0});
  auto b = pool.add_consumer({"b", 1.0, -1.0});
  double ga = 0, gb = 0;
  run_ticks(pool, 20, [&](int) {
    ga = pool.request(a, 0.0001);  // a wants little
    gb = pool.request(b, 0.010);   // b wants lots
  });
  EXPECT_NEAR(ga, 0.0001, 1e-9);
  // b can use the whole remainder of the 0.002 tick capacity.
  EXPECT_NEAR(gb, 0.002 - 0.0001, 1e-4);
}

TEST(PoolTest, UtilizationTracksConsumption) {
  ResourcePool pool("cpu", 4.0);
  auto c = pool.add_consumer({"c", 1.0, -1.0});
  run_ticks(pool, 10, [&](int) { pool.request(c, 0.002); });
  pool.step(SimTime::millis(10), kTick);  // close out last tick
  EXPECT_NEAR(pool.utilization(), 0.5, 1e-6);
}

TEST(PoolTest, DemandAccumulatesAcrossRequestsInTick) {
  ResourcePool pool("cpu", 1.0);
  auto a = pool.add_consumer({"a", 1.0, -1.0});
  auto b = pool.add_consumer({"b", 1.0, -1.0});
  double ga = 0, gb = 0;
  run_ticks(pool, 20, [&](int) {
    ga = pool.request(a, 0.001);
    ga += pool.request(a, 0.001);  // second request, same tick
    gb = pool.request(b, 0.002);
  });
  // Both demand 2x capacity-per-tick; fair split.
  EXPECT_NEAR(ga, 0.0005, 1e-4);
  EXPECT_NEAR(gb, 0.0005, 1e-4);
}

TEST(PoolTest, RatePrevTickReporting) {
  ResourcePool pool("bus", 1000.0);
  auto c = pool.add_consumer({"c", 1.0, -1.0});
  SimTime t;
  pool.step(t, kTick);
  pool.request(c, 0.5);
  pool.step(t + kTick, kTick);
  EXPECT_NEAR(pool.rate_prev_tick(c), 500.0, 1e-6);  // 0.5 units / 1ms
}

TEST(BufferSpaceTest, NoPressureFullAllowance) {
  BufferSpace bs(1000000);
  auto a = bs.add_owner(300000);
  auto b = bs.add_owner(300000);
  EXPECT_EQ(bs.allowance(a), 300000u);
  EXPECT_EQ(bs.allowance(b), 300000u);
}

TEST(BufferSpaceTest, PressureScalesProportionally) {
  BufferSpace bs(1000000);
  auto a = bs.add_owner(600000);
  auto b = bs.add_owner(600000);
  bs.set_pressure_bytes(400000);  // only 600000 left for 1200000 desired
  EXPECT_EQ(bs.allowance(a), 300000u);
  EXPECT_EQ(bs.allowance(b), 300000u);
}

TEST(BufferSpaceTest, AllowanceNeverBelowFloor) {
  BufferSpace bs(1000000);
  auto a = bs.add_owner(500000);
  bs.set_pressure_bytes(999999);
  EXPECT_GE(bs.allowance(a), 2048u);
}

}  // namespace
}  // namespace perfsight
