// Pump elements in isolation: NAPI poll, the hypervisor I/O handler (rate
// coupling to CPU/memory grants, ring gating, demand caps) and the guest
// stack.
#include "dataplane/pumps.h"

#include <gtest/gtest.h>

namespace perfsight::dp {
namespace {

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * size};
}

struct CollectPort : PortIn {
  uint64_t pkts = 0;
  void accept(PacketBatch b) override { pkts += b.packets; }
};

struct PumpRig {
  ResourcePool cpu{"cpu", 8.0};
  ResourcePool mem{"mem", 25e9, PoolPolicy::kProportional};
  ResourcePool::ConsumerId softirq, qemu_cpu, qemu_mem, vcpu, backlog_mem;
  PNic pnic{ElementId{"pnic"}, {DataRate::gbps(10), 4096, 4096}};
  CollectPort vswitch_port;
  std::unique_ptr<PCpuBacklog> backlog;
  Tun tun{ElementId{"tun"}, 0, QueueCaps{4096, 4 << 20}};
  VNic vnic{ElementId{"vnic"}, 0, 4096};
  GuestBacklog gbacklog{ElementId{"gb"}, 0, 4096};
  GuestSocket gsocket{ElementId{"gs"}, 0, 2 << 20};
  std::unique_ptr<NapiPoll> napi;
  std::unique_ptr<HypervisorIo> hyperio;
  std::unique_ptr<GuestStack> guest;
  SimTime now;

  PumpRig() {
    softirq = cpu.add_consumer({"softirq", 50.0, 2.0});
    qemu_cpu = cpu.add_consumer({"qemu", 1.0, 1.0});
    vcpu = cpu.add_consumer({"vcpu", 1.0, 1.0});
    backlog_mem = mem.add_consumer({"softirq-mem", 50.0, -1.0});
    qemu_mem = mem.add_consumer({"qemu-mem", 1.0, -1.0});
    backlog = std::make_unique<PCpuBacklog>(
        ElementId{"backlog"}, PCpuBacklog::Config{}, &cpu, softirq, &mem,
        backlog_mem, &vswitch_port);
    napi = std::make_unique<NapiPoll>(ElementId{"napi"}, NapiPoll::Config{},
                                      &pnic, backlog.get(), &cpu, softirq);
    hyperio = std::make_unique<HypervisorIo>(
        ElementId{"qemu-io"}, 0, HypervisorIo::Config{}, &tun, &vnic,
        backlog.get(), &cpu, qemu_cpu, &mem, qemu_mem);
    guest = std::make_unique<GuestStack>("guest", GuestStack::Config{},
                                         &vnic, &gbacklog, &gsocket, &cpu,
                                         vcpu);
  }
  void tick(Duration dt = Duration::millis(1)) {
    cpu.step(now, dt);
    mem.step(now, dt);
    backlog->step(now, dt);
    pnic.step(now, dt);
    napi->step(now, dt);
    hyperio->step(now, dt);
    guest->step(now, dt);
    now = now + dt;
  }
};

TEST(NapiPollTest, MovesRingToBacklog) {
  PumpRig rig;
  rig.pnic.offer_rx(batch(1, 100));
  rig.tick();  // admit
  rig.tick();  // poll + process
  EXPECT_EQ(rig.napi->stats().pkts_in.value(), 100u);
  // Backlog received them (forwarded to vswitch within a tick or two).
  rig.tick();
  EXPECT_EQ(rig.vswitch_port.pkts, 100u);
}

TEST(HypervisorIoTest, MovesTunToVNic) {
  PumpRig rig;
  rig.tun.accept(batch(1, 50));
  rig.tick();
  EXPECT_EQ(rig.hyperio->stats().pkts_in.value(), 50u);
  // Guest stack already pulled them through to the socket.
  EXPECT_EQ(rig.gsocket.queued_packets(), 50u);
}

TEST(HypervisorIoTest, StalledGuestBacksUpIntoTun) {
  PumpRig rig;
  // Fill the vNIC rx ring and never drain it (skip guest steps).
  for (int t = 0; t < 30; ++t) {
    rig.tun.accept(batch(1, 500));
    rig.cpu.step(rig.now, Duration::millis(1));
    rig.mem.step(rig.now, Duration::millis(1));
    rig.hyperio->step(rig.now, Duration::millis(1));
    rig.now = rig.now + Duration::millis(1);
  }
  // vNIC ring full, TUN overflows: drops charged to the TUN.
  EXPECT_EQ(rig.vnic.rx_space_packets(), 0u);
  EXPECT_GT(rig.tun.stats().drop_pkts.value(), 1000u);
  EXPECT_EQ(rig.vnic.stats().drop_pkts.value(), 0u);  // hyperio respects space
}

TEST(HypervisorIoTest, TxPathFeedsBacklog) {
  PumpRig rig;
  rig.vnic.push_tx(batch(2, 80, 700));
  rig.tick();
  rig.tick();
  EXPECT_EQ(rig.vswitch_port.pkts, 80u);
  // The hypervisor element counted the tx-direction work too.
  EXPECT_EQ(rig.hyperio->stats().pkts_out.value(), 80u);
}

TEST(HypervisorIoTest, PerTickWorkBoundLimitsBurstDrain) {
  PumpRig rig;
  // A huge standing TUN backlog cannot be flushed in one tick: the 2.5 GB/s
  // work bound admits at most ~2.5 MB (1666 packets) per 1 ms tick.
  rig.tun.set_caps(QueueCaps{100000, 1ull << 30});
  rig.tun.accept(batch(1, 50000));
  rig.tick();
  uint64_t moved = rig.hyperio->stats().pkts_in.value();
  EXPECT_LE(moved, 1800u);
  EXPECT_GT(moved, 500u);  // CPU cap (1 core) binds slightly below the byte bound
}

TEST(HypervisorIoTest, IdleThreadAccumulatesBlockTime) {
  PumpRig rig;
  for (int t = 0; t < 10; ++t) rig.tick();
  // Nothing to move: the I/O thread blocks on the TAP fd the whole time.
  EXPECT_NEAR(static_cast<double>(rig.hyperio->stats().in_time.nanos()),
              10e6, 1e3);
}

TEST(GuestStackTest, StarvedVcpuStallsDelivery) {
  PumpRig rig;
  // Another consumer in the guest grabs the whole vCPU first each tick.
  for (int t = 0; t < 20; ++t) {
    rig.tun.accept(batch(1, 400));
    rig.cpu.step(rig.now, Duration::millis(1));
    rig.mem.step(rig.now, Duration::millis(1));
    rig.cpu.request(rig.vcpu, 0.001);  // hog claims the 1-vCPU cap
    rig.hyperio->step(rig.now, Duration::millis(1));
    rig.guest->step(rig.now, Duration::millis(1));
    rig.now = rig.now + Duration::millis(1);
  }
  // The socket stays starved while rings/queues upstream fill.
  EXPECT_LT(rig.gsocket.queued_packets() + rig.gsocket.stats().pkts_out.value(),
            1000u);
  EXPECT_GT(rig.tun.queued_packets() + rig.vnic.rx_queued_packets() +
                rig.gbacklog.queued_packets() + rig.tun.stats().drop_pkts.value(),
            4000u);
}

}  // namespace
}  // namespace perfsight::dp
