#include "packet/queue.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "packet/flow.h"

namespace perfsight {
namespace {

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t pkt_size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * pkt_size};
}

TEST(BatchTest, TakeFrontSplitsConservatively) {
  PacketBatch b = batch(1, 100);
  PacketBatch front = take_front(b, 30, UINT64_MAX);
  EXPECT_EQ(front.packets, 30u);
  EXPECT_EQ(b.packets, 70u);
  EXPECT_EQ(front.bytes + b.bytes, 150000u);
}

TEST(BatchTest, TakeFrontByteLimited) {
  PacketBatch b = batch(1, 100);
  PacketBatch front = take_front(b, UINT64_MAX, 15000);  // 10 packets' worth
  EXPECT_EQ(front.packets, 10u);
  EXPECT_EQ(b.packets, 90u);
}

TEST(BatchTest, TakeFrontWholeBatch) {
  PacketBatch b = batch(2, 5);
  PacketBatch front = take_front(b, 100, UINT64_MAX);
  EXPECT_EQ(front.packets, 5u);
  EXPECT_TRUE(b.empty());
}

TEST(QueueTest, EnqueueDequeueFifo) {
  BoundedPacketQueue q;
  q.enqueue(batch(1, 10));
  q.enqueue(batch(2, 5));
  PacketBatch a = q.dequeue(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(a.flow, FlowId{1});
  EXPECT_EQ(a.packets, 10u);
  PacketBatch b = q.dequeue(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(b.flow, FlowId{2});
  EXPECT_TRUE(q.empty());
}

TEST(QueueTest, PacketCapDropsTail) {
  BoundedPacketQueue q(QueueCaps{300, UINT64_MAX});
  q.enqueue(batch(1, 250));
  q.enqueue(batch(2, 100));
  EXPECT_EQ(q.packets(), 300u);
  EXPECT_EQ(q.dropped_packets(), 50u);
  EXPECT_EQ(q.dropped_packets_for(FlowId{2}), 50u);
  EXPECT_EQ(q.dropped_packets_for(FlowId{1}), 0u);
}

TEST(QueueTest, ByteCapDropsTail) {
  BoundedPacketQueue q(QueueCaps{UINT64_MAX, 15000});
  q.enqueue(batch(1, 20));  // 30000 bytes offered
  EXPECT_EQ(q.bytes(), 15000u);
  EXPECT_EQ(q.dropped_packets(), 10u);
}

TEST(QueueTest, FullQueueRejectsEverything) {
  BoundedPacketQueue q(QueueCaps{10, UINT64_MAX});
  q.enqueue(batch(1, 10));
  uint64_t accepted = q.enqueue(batch(1, 5));
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(q.dropped_packets(), 5u);
}

TEST(QueueTest, PartialDequeueSplitsHead) {
  BoundedPacketQueue q;
  q.enqueue(batch(1, 100));
  PacketBatch out = q.dequeue(30, UINT64_MAX);
  EXPECT_EQ(out.packets, 30u);
  EXPECT_EQ(q.packets(), 70u);
  PacketBatch rest = q.dequeue(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(rest.packets, 70u);
}

TEST(QueueTest, DequeueRespectsByteBudget) {
  BoundedPacketQueue q;
  q.enqueue(batch(1, 100));
  PacketBatch out = q.dequeue(UINT64_MAX, 4500);  // 3 packets
  EXPECT_EQ(out.packets, 3u);
}

TEST(QueueTest, SameFlowBatchesMerge) {
  BoundedPacketQueue q;
  for (int i = 0; i < 1000; ++i) q.enqueue(batch(7, 1));
  EXPECT_EQ(q.packets(), 1000u);
  // A single dequeue drains the whole merged run.
  PacketBatch out = q.dequeue(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(out.packets, 1000u);
}

// Conservation property: enqueued = dequeued + dropped + still queued.
class QueueConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueConservationTest, PacketsAndBytesConserved) {
  Pcg32 rng(GetParam());
  BoundedPacketQueue q(QueueCaps{200 + rng.next_below(500),
                                 100000 + rng.next_below(1000000)});
  uint64_t in_pkts = 0, in_bytes = 0, out_pkts = 0, out_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    uint32_t flow = rng.next_below(5);
    uint64_t pkts = 1 + rng.next_below(120);
    uint64_t size = 64 + rng.next_below(1436);
    PacketBatch b = batch(flow, pkts, size);
    in_pkts += b.packets;
    in_bytes += b.bytes;
    q.enqueue(b);
    if (rng.next_below(2) == 0) {
      PacketBatch out = q.dequeue(rng.next_below(300), rng.next_below(400000));
      out_pkts += out.packets;
      out_bytes += out.bytes;
    }
  }
  EXPECT_EQ(in_pkts, out_pkts + q.dropped_packets() + q.packets());
  EXPECT_EQ(in_bytes, out_bytes + q.dropped_bytes() + q.bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueConservationTest,
                         ::testing::Values(1, 7, 21, 303, 777, 31337));

TEST(FlowSpecTest, MakeBatch) {
  FlowSpec f;
  f.id = FlowId{9};
  f.packet_size = 100;
  PacketBatch b = f.make_batch(7);
  EXPECT_EQ(b.packets, 7u);
  EXPECT_EQ(b.bytes, 700u);
  PacketBatch c = f.make_batch_bytes(250);
  EXPECT_EQ(c.packets, 2u);
  PacketBatch d = f.make_batch_bytes(50);  // sub-packet rounds up to 1
  EXPECT_EQ(d.packets, 1u);
}

}  // namespace
}  // namespace perfsight
