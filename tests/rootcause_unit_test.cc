// Algorithm 2 unit tests against scripted middlebox statistics — no
// simulator, just counter deltas — exercising the state classification and
// candidate filtering on chains, branches, and edge cases.
#include "perfsight/rootcause.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "perfsight/agent.h"
#include "perfsight/controller.h"

namespace perfsight {
namespace {

// A middlebox whose per-second counter increments are scripted:
//   in_rate/out_rate are b/t values in Mbps; *_busy sets how much of each
//   second the side spends in its I/O methods.
struct ScriptedMb : StatsSource {
  ScriptedMb(std::string n, double capacity) : id_{std::move(n)}, cap(capacity) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kMbSocket; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = {{attr::kInBytes, in_bytes},
               {attr::kInTimeNs, in_time_ns},
               {attr::kOutBytes, out_bytes},
               {attr::kOutTimeNs, out_time_ns},
               {attr::kCapacityMbps, cap}};
    return r;
  }

  // Advances one second of scripted behaviour: the side moves `rate_mbps`
  // worth of bytes while spending `time_frac` of the second in its I/O
  // method (so b/t = rate/time_frac).
  void advance_in(double rate_mbps, double time_frac) {
    in_bytes += rate_mbps * 1e6 / 8;
    in_time_ns += time_frac * 1e9;
  }
  void advance_out(double rate_mbps, double time_frac) {
    out_bytes += rate_mbps * 1e6 / 8;
    out_time_ns += time_frac * 1e9;
  }

  ElementId id_;
  double cap;
  double in_bytes = 0, in_time_ns = 0, out_bytes = 0, out_time_ns = 0;
};

class RootCauseUnit : public ::testing::Test {
 protected:
  RootCauseUnit()
      : agent_("a0"),
        controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }) {
    controller_.register_agent(&agent_);
  }

  ScriptedMb* mb(const std::string& name, double cap = 100) {
    mbs_.push_back(std::make_unique<ScriptedMb>(name, cap));
    ScriptedMb* m = mbs_.back().get();
    PS_CHECK(agent_.add_element(m).is_ok());
    PS_CHECK(
        controller_.register_element(kTenant, m->id(), &agent_).is_ok());
    controller_.register_middlebox(kTenant, m->id());
    return m;
  }
  void edge(ScriptedMb* a, ScriptedMb* b) {
    controller_.add_chain_edge(kTenant, a->id(), b->id());
  }
  SimTime advance(Duration d) {
    now_ = now_ + d;
    double secs = d.sec();
    for (auto& fn : per_second_) fn(secs);
    return now_;
  }
  // Registers scripted per-second behaviour applied during the window.
  void behavior(std::function<void(double)> fn) {
    per_second_.push_back(std::move(fn));
  }
  RootCauseReport analyze() {
    RootCauseAnalyzer analyzer(&controller_);
    return analyzer.analyze(kTenant, Duration::seconds(1.0));
  }
  static MbState state_of(const RootCauseReport& r, ScriptedMb* m) {
    for (const MbObservation& o : r.observations) {
      if (o.id == m->id()) return o.state;
    }
    ADD_FAILURE() << "no observation for " << m->id_.name;
    return MbState::kNormal;
  }

  static constexpr TenantId kTenant{1};
  SimTime now_;
  Agent agent_;
  Controller controller_;
  std::vector<std::unique_ptr<ScriptedMb>> mbs_;
  std::vector<std::function<void(double)>> per_second_;
};

TEST_F(RootCauseUnit, ReadBlockedWhenInputRateBelowCapacity) {
  ScriptedMb* m = mb("relay");
  behavior([m](double s) {
    m->advance_in(20 * s, 0.9 * s);   // 20 Mbps over 0.9s of read time
    m->advance_out(20 * s, 0.05 * s); // writes fast
  });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, m), MbState::kReadBlocked);
}

TEST_F(RootCauseUnit, WriteBlockedWhenOutputRateBelowCapacity) {
  ScriptedMb* m = mb("relay");
  behavior([m](double s) {
    m->advance_in(20 * s, 0.001 * s);  // reads return instantly
    m->advance_out(20 * s, 0.9 * s);   // writes crawl
  });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, m), MbState::kWriteBlocked);
}

TEST_F(RootCauseUnit, BusyMiddleboxIsNormal) {
  ScriptedMb* m = mb("encoder");
  behavior([m](double s) {
    // Moves little data but each I/O call is fast (processing dominates).
    m->advance_in(20 * s, 0.01 * s);
    m->advance_out(20 * s, 0.01 * s);
  });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, m), MbState::kNormal);
  ASSERT_EQ(r.root_causes.size(), 1u);
}

TEST_F(RootCauseUnit, ReadBlockedPrecedesWriteBlockedInClassification) {
  // Algorithm 2 checks the input side first (lines 12-15).
  ScriptedMb* m = mb("relay");
  behavior([m](double s) {
    m->advance_in(10 * s, 0.5 * s);
    m->advance_out(10 * s, 0.5 * s);
  });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, m), MbState::kReadBlocked);
}

TEST_F(RootCauseUnit, LinearChainOverloadedSink) {
  ScriptedMb* a = mb("a"), *b = mb("b"), *c = mb("c");
  edge(a, b);
  edge(b, c);
  behavior([=](double s) {
    a->advance_out(10 * s, 0.9 * s);   // WriteBlocked source
    b->advance_in(10 * s, 0.001 * s);  // rbuf full: reads fast
    b->advance_out(10 * s, 0.9 * s);   // WriteBlocked
    c->advance_in(10 * s, 0.01 * s);   // busy sink: reads fast, no output
  });
  RootCauseReport r = analyze();
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], c->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kOverloaded);
}

TEST_F(RootCauseUnit, LinearChainUnderloadedSource) {
  ScriptedMb* a = mb("a"), *b = mb("b"), *c = mb("c");
  edge(a, b);
  edge(b, c);
  behavior([=](double s) {
    a->advance_out(5 * s, 0.01 * s);  // slow but unblocked source
    b->advance_in(5 * s, 0.95 * s);   // starved
    b->advance_out(5 * s, 0.01 * s);
    c->advance_in(5 * s, 0.95 * s);   // starved
  });
  RootCauseReport r = analyze();
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], a->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kUnderloaded);
}

TEST_F(RootCauseUnit, IdleBranchDoesNotExonerateSharedSuccessor) {
  // a -> b -> shared;  idle -> shared.  The idle branch is ReadBlocked but
  // must not clear the busy shared node (the Fig. 12(d) NFS refinement).
  ScriptedMb* a = mb("a"), *b = mb("b"), *shared = mb("shared"),
              *idle = mb("idle");
  edge(a, b);
  edge(b, shared);
  edge(idle, shared);
  behavior([=](double s) {
    a->advance_out(5 * s, 0.9 * s);       // WriteBlocked
    b->advance_in(5 * s, 0.001 * s);
    b->advance_out(5 * s, 0.9 * s);       // WriteBlocked
    idle->advance_in(0, 0.99 * s);        // fully starved: ReadBlocked
    shared->advance_in(5 * s, 0.01 * s);  // busy (the true root cause)
  });
  RootCauseReport r = analyze();
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], shared->id());
}

TEST_F(RootCauseUnit, ReadBlockedChainRemovedTransitively) {
  // a(normal, slow) -> b(ReadBlocked) -> c(ReadBlocked): b's state removes
  // c as well even though they are separate observations.
  ScriptedMb* a = mb("a"), *b = mb("b"), *c = mb("c");
  edge(a, b);
  edge(b, c);
  behavior([=](double s) {
    a->advance_out(5 * s, 0.01 * s);
    b->advance_in(5 * s, 0.9 * s);
    b->advance_out(5 * s, 0.01 * s);
    c->advance_in(5 * s, 0.9 * s);
  });
  RootCauseReport r = analyze();
  ASSERT_EQ(r.root_causes.size(), 1u);
  EXPECT_EQ(r.root_causes[0], a->id());
}

TEST_F(RootCauseUnit, MissingCapacityMeansNoStateJudgement) {
  ScriptedMb* m = mb("nocap", /*cap=*/0);
  behavior([m](double s) { m->advance_in(1 * s, 0.9 * s); });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, m), MbState::kNormal);
}

TEST_F(RootCauseUnit, IdleSideDoesNotTriggerBlockedState) {
  // A pure source has no input side at all: in rate = -1 (unused), and it
  // must not be classified ReadBlocked.
  ScriptedMb* src = mb("source");
  behavior([src](double s) { src->advance_out(50 * s, 0.001 * s); });
  RootCauseReport r = analyze();
  EXPECT_EQ(state_of(r, src), MbState::kNormal);
  EXPECT_FALSE(r.observations[0].has_input);
  EXPECT_TRUE(r.observations[0].has_output);
}

TEST_F(RootCauseUnit, AllHealthyChainHasConsistentNarrative) {
  ScriptedMb* a = mb("a"), *b = mb("b");
  edge(a, b);
  behavior([=](double s) {
    a->advance_out(90 * s, 0.02 * s);
    b->advance_in(90 * s, 0.02 * s);
  });
  RootCauseReport r = analyze();
  // Nobody blocked: both remain candidates (nothing to exonerate them),
  // which is the degenerate "no complaint" situation.
  EXPECT_EQ(r.root_causes.size(), 2u);
}

TEST_F(RootCauseUnit, MultipleIndependentFaultsBothSurvive) {
  // Two disjoint chains, each with its own overloaded sink.
  ScriptedMb* a1 = mb("a1"), *sink1 = mb("sink1");
  ScriptedMb* a2 = mb("a2"), *sink2 = mb("sink2");
  edge(a1, sink1);
  edge(a2, sink2);
  behavior([=](double s) {
    a1->advance_out(10 * s, 0.9 * s);
    sink1->advance_in(10 * s, 0.01 * s);
    a2->advance_out(10 * s, 0.9 * s);
    sink2->advance_in(10 * s, 0.01 * s);
  });
  RootCauseReport r = analyze();
  ASSERT_EQ(r.root_causes.size(), 2u);
}

}  // namespace
}  // namespace perfsight
