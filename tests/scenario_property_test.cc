// Parameterized scenario sweeps: diagnosis conclusions must hold across a
// range of workload intensities, capacities, and fault magnitudes — not
// just at the calibration points the benches print.
#include <gtest/gtest.h>

#include "cluster/deployment.h"
#include "cluster/scenarios.h"
#include "mbox/presets.h"
#include "perfsight/contention.h"
#include "perfsight/rootcause.h"

namespace perfsight {
namespace {

using namespace literals;
using cluster::Deployment;

// --- Algorithm 2 holds across server service rates -------------------------

class OverloadedServerSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverloadedServerSweep, RootCauseInvariantToSeverity) {
  // A dedicated chain (client -> relay -> server) with varying server
  // service rates, all strictly below the 100 Mbps vNIC capacity.
  double server_mbps = GetParam();
  sim::Simulator sim(Duration::millis(1));
  mbox::StreamMachine m(mbox::StreamMachineConfig{"m0", 8, 25e9, 16}, &sim);
  Deployment dep(&sim);

  auto vm = [&](const char* n) {
    mbox::StreamVmConfig cfg;
    cfg.name = n;
    cfg.vnic = 100_mbps;
    return m.add_vm(cfg);
  };
  auto* vc = vm("vm-c");
  auto* vr = vm("vm-r");
  auto* vs = vm("vm-s");
  auto* c1 = m.connect(vc, vr, {"c-r"});
  auto* c2 = m.connect(vr, vs, {"r-s"});
  auto* client = m.add_app(vc, "client", mbox::presets::client_unbounded());
  client->add_output(c1, 1.0);
  auto* relay = m.add_app(vr, "relay", mbox::presets::content_filter());
  relay->add_input(c1);
  relay->add_output(c2, 1.0);
  auto* server =
      m.add_app(vs, "server", mbox::presets::server(DataRate::mbps(server_mbps)));
  server->add_input(c2);

  Agent* agent = dep.add_agent("a0");
  dep.attach(&m, agent);
  const TenantId tenant{1};
  for (auto* app : {client, relay, server}) {
    PS_CHECK(dep.add_middlebox(tenant, app, agent).is_ok());
  }
  dep.chain(tenant, client, relay);
  dep.chain(tenant, relay, server);

  sim.run_for(4_s);
  RootCauseAnalyzer analyzer(dep.controller());
  RootCauseReport r = analyzer.analyze(tenant, Duration::seconds(1.0));
  ASSERT_EQ(r.root_causes.size(), 1u)
      << "server_mbps=" << server_mbps << "\n"
      << to_text(r);
  EXPECT_EQ(r.root_causes[0], server->id());
  EXPECT_EQ(r.root_cause_roles[0], MbRole::kOverloaded);
}

INSTANTIATE_TEST_SUITE_P(ServiceRates, OverloadedServerSweep,
                         ::testing::Values(5, 10, 20, 40, 60, 80));

// --- Fig. 12(d) holds across NFS degradation levels -------------------------

class BuggyNfsSweep : public ::testing::TestWithParam<double> {};

TEST_P(BuggyNfsSweep, NfsAlwaysIdentified) {
  cluster::PropagationScenario s(
      cluster::PropagationScenario::Case::kBuggyNfs);
  // Degrade further mid-run (the leak worsens over time).
  s.nfs->set_proc_rate(GetParam() * 1e6 / 8);
  s.settle(Duration::seconds(4.0));
  RootCauseReport r = s.diagnose();
  ASSERT_EQ(r.root_causes.size(), 1u) << to_text(r);
  EXPECT_EQ(r.root_causes[0], s.nfs->id());
}

INSTANTIATE_TEST_SUITE_P(NfsRatesMbps, BuggyNfsSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// --- Fig. 10 severity grows with flood intensity ------------------------------

class FloodSweep : public ::testing::TestWithParam<int> {};

TEST_P(FloodSweep, VictimDegradationMonotoneInFloodRate) {
  auto run = [](DataRate flood_rate) {
    sim::Simulator sim(Duration::millis(1));
    dp::StackParams params;
    params.pnic_rate = 1_gbps;
    params.softirq_cost_per_pkt = 3.2e-6;
    params.qemu_cost_per_pkt = 0.25e-6;
    vm::PhysicalMachine m("m0", params, &sim);
    int rx = m.add_vm({"vm0", 1.0});
    int fl = m.add_vm({"vm1", 1.0});
    m.set_sink_app(rx);
    FlowSpec fin;
    fin.id = FlowId{1};
    fin.packet_size = 1500;
    m.route_flow_to_vm(fin, rx);
    m.add_ingress_source("rx", fin, 500_mbps);
    FlowSpec ff;
    ff.id = FlowId{2};
    ff.packet_size = 64;
    dp::SourceApp::Config cfg;
    cfg.flow = ff;
    cfg.rate = flood_rate;
    cfg.cost_per_pkt = 0.05e-6;
    m.set_source_app(fl, cfg);
    m.route_flow_to_wire(ff.id, "flood");
    m.pin_flow_to_core(fin.id, 0);
    m.pin_flow_to_core(ff.id, 0);
    sim.run_for(2_s);
    return static_cast<double>(m.app(rx)->stats().bytes_in.value());
  };
  double mild = run(DataRate::mbps(100 * GetParam()));
  double severe = run(DataRate::mbps(100 * GetParam() + 400));
  // More flood, (weakly) less victim goodput.
  EXPECT_GE(mild, severe * 0.98);
}

INSTANTIATE_TEST_SUITE_P(FloodLevels, FloodSweep, ::testing::Values(1, 3, 6));

// --- Algorithm 1 identifies the bottleneck VM regardless of which one -------

class BottleneckVmSweep : public ::testing::TestWithParam<int> {};

TEST_P(BottleneckVmSweep, CorrectVmIdentified) {
  const int victim = GetParam();
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  Deployment dep(&sim);
  for (int i = 0; i < 4; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    m.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    m.route_flow_to_vm(f, v);
    m.add_ingress_source("s" + std::to_string(i), f, 500_mbps);
  }
  m.add_vm_cpu_hog(victim)->set_demand_cores(1.0);
  Agent* agent = dep.add_agent("a0");
  dep.attach(&m, agent);
  const TenantId tenant{1};
  PS_CHECK(dep.assign(tenant, m.tun(0)->id(), agent).is_ok());
  sim.run_for(2_s);

  ContentionDetector det(dep.controller(), RuleBook::standard());
  det.set_loss_threshold(50);
  ContentionReport r =
      det.diagnose(tenant, Duration::seconds(1.0), m.aux_signals());
  ASSERT_TRUE(r.problem_found);
  EXPECT_EQ(r.spread, LossSpread::kSingleVm);
  ASSERT_EQ(r.affected_vms.size(), 1u);
  EXPECT_EQ(r.affected_vms[0], victim);
  EXPECT_EQ(r.ranked[0].id, m.tun(victim)->id());
}

INSTANTIATE_TEST_SUITE_P(VictimIndex, BottleneckVmSweep,
                         ::testing::Values(0, 1, 2, 3));

// --- Memory tradeoff slope stays near -1/k across hog levels -----------------

class MemTradeoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(MemTradeoffSweep, WorkConservingTradeoff) {
  auto run = [](double hog_bytes_per_sec) {
    sim::Simulator sim(Duration::millis(1));
    vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
    for (int i = 0; i < 5; ++i) {
      int v = m.add_vm({"vm" + std::to_string(i), 1.0});
      FlowSpec f;
      f.id = FlowId{static_cast<uint32_t>(i + 1)};
      f.packet_size = 1500;
      f.direction = FlowDirection::kEgress;
      dp::SourceApp::Config cfg;
      cfg.flow = f;
      cfg.rate = 2_gbps;
      m.set_source_app(v, cfg);
      m.route_flow_to_wire(f.id, "o" + std::to_string(i));
    }
    m.add_vm({"memvm", 1.0});
    auto* hog = m.add_mem_hog("hog");
    hog->set_demand_bytes_per_sec(hog_bytes_per_sec);
    sim.run_for(2_s);
    uint64_t t0 = m.pnic()->tx_wire_bytes();
    sim.run_for(1_s);
    return std::pair<double, double>{
        hog->achieved_bytes_per_sec(),
        static_cast<double>(m.pnic()->tx_wire_bytes() - t0) * 8 / 1e9};
  };
  double base = 4e9 + 1e9 * GetParam();
  auto [hog_a, net_a] = run(base);
  auto [hog_b, net_b] = run(base + 2e9);
  // Work conservation: wire loss (in bus bytes, x18.2) ~= extra hog bytes.
  double wire_loss_bus = (net_a - net_b) * 1e9 / 8 * 18.2;
  double hog_gain = hog_b - hog_a;
  EXPECT_NEAR(wire_loss_bus, hog_gain, 0.35 * hog_gain);
}

INSTANTIATE_TEST_SUITE_P(HogLevels, MemTradeoffSweep,
                         ::testing::Values(0, 2, 4));

}  // namespace
}  // namespace perfsight
