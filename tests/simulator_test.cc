#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace perfsight::sim {
namespace {

struct CountingComponent : Steppable {
  int steps = 0;
  SimTime last_now;
  Duration last_dt;
  void step(SimTime now, Duration dt) override {
    ++steps;
    last_now = now;
    last_dt = dt;
  }
};

TEST(SimulatorTest, RunsTickLoop) {
  Simulator sim(Duration::millis(1));
  CountingComponent c;
  sim.add(&c);
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(c.steps, 10);
  EXPECT_EQ(sim.now().ns(), SimTime::millis(10).ns());
  EXPECT_EQ(c.last_now.ns(), SimTime::millis(9).ns());
  EXPECT_EQ(c.last_dt.ns(), Duration::millis(1).ns());
}

TEST(SimulatorTest, ComponentsStepInRegistrationOrder) {
  Simulator sim;
  std::vector<int> order;
  struct Rec : Steppable {
    std::vector<int>* order = nullptr;
    int id = 0;
    void step(SimTime, Duration) override { order->push_back(id); }
  };
  Rec a, b, c;
  a.order = b.order = c.order = &order;
  a.id = 1;
  b.id = 2;
  c.id = 3;
  sim.add(&a);
  sim.add(&b);
  sim.add(&c);
  sim.run_for(Duration::millis(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduledEventFiresAtTime) {
  Simulator sim;
  std::vector<double> fired_at;
  sim.at(SimTime::millis(5), [&] { fired_at.push_back(sim.now().ms()); });
  sim.run_until(SimTime::millis(10));
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);
}

TEST(SimulatorTest, EventsFireInTimeThenFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(SimTime::millis(3), [&] { order.push_back(2); });
  sim.at(SimTime::millis(1), [&] { order.push_back(1); });
  sim.at(SimTime::millis(3), [&] { order.push_back(3); });  // same time, later
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  sim.run_until(SimTime::millis(2));
  bool fired = false;
  sim.after(Duration::millis(3), [&] { fired = true; });
  sim.run_until(SimTime::millis(4));
  EXPECT_FALSE(fired);
  sim.run_until(SimTime::millis(6));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EveryRepeats) {
  Simulator sim;
  int count = 0;
  sim.every(SimTime::millis(2), Duration::millis(3), [&] { ++count; });
  sim.run_until(SimTime::millis(12));
  // Fires at 2, 5, 8, 11.
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, EventScheduledInsideEventRuns) {
  Simulator sim;
  bool inner = false;
  sim.at(SimTime::millis(1), [&] {
    sim.after(Duration::millis(2), [&] { inner = true; });
  });
  sim.run_until(SimTime::millis(5));
  EXPECT_TRUE(inner);
}

TEST(SimulatorTest, RunForAdvancesRelative) {
  Simulator sim;
  sim.run_for(Duration::millis(7));
  sim.run_for(Duration::millis(5));
  EXPECT_EQ(sim.now().ns(), SimTime::millis(12).ns());
}

}  // namespace
}  // namespace perfsight::sim
