#include "perfsight/stats.h"

#include <gtest/gtest.h>

#include "perfsight/counters.h"
#include "perfsight/topology.h"

namespace perfsight {
namespace {

TEST(CounterTest, Monotone) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6u);
}

TEST(IoTimeCounterTest, AccumulatesSimAndRawTime) {
  IoTimeCounter t;
  t.add(Duration::micros(3));
  t.add_nanos(500);
  EXPECT_EQ(t.nanos(), 3500u);
  EXPECT_EQ(t.total().ns(), 3500);
}

TEST(ScopedIoTimerTest, RecordsElapsedWallTime) {
  IoTimeCounter t;
  {
    ScopedIoTimer timer(t);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GT(t.nanos(), 0u);
}

TEST(StatsRecordTest, GetAndSet) {
  StatsRecord r;
  r.set("rxPkts", 42);
  r.set("rxPkts", 43);  // overwrite
  r.set("txPkts", 7);
  EXPECT_EQ(r.get("rxPkts"), 43.0);
  EXPECT_EQ(r.get_or("missing", -1), -1.0);
  EXPECT_EQ(r.attrs.size(), 2u);
}

TEST(WireFormatTest, SerializesPaperFormat) {
  StatsRecord r;
  r.timestamp = SimTime::nanos(1234000);
  r.element = ElementId{"eth0"};
  r.attrs = {{"Rx bytes", 100}, {"Tx bytes", 200}};
  EXPECT_EQ(to_wire(r), "<1234000, eth0, (Rx bytes, 100), (Tx bytes, 200)>");
}

TEST(WireFormatTest, RoundTrips) {
  StatsRecord r;
  r.timestamp = SimTime::millis(42);
  r.element = ElementId{"m0/vm1/tun"};
  r.attrs = {{"rxPkts", 12345}, {"dropPkts", 7}, {"avgSize", 1433.5}};
  Result<StatsRecord> back = from_wire(to_wire(r));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().timestamp.ns(), r.timestamp.ns());
  EXPECT_EQ(back.value().element, r.element);
  ASSERT_EQ(back.value().attrs.size(), 3u);
  EXPECT_EQ(back.value().get("rxPkts"), 12345.0);
  EXPECT_EQ(back.value().get("avgSize"), 1433.5);
}

TEST(WireFormatTest, ParsesNoAttrs) {
  Result<StatsRecord> r = from_wire("<5, eth0>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().attrs.empty());
}

TEST(WireFormatTest, RejectsMalformed) {
  EXPECT_FALSE(from_wire("").ok());
  EXPECT_FALSE(from_wire("1234, eth0>").ok());
  EXPECT_FALSE(from_wire("<1234>").ok());
  EXPECT_FALSE(from_wire("<1234, eth0, (x, 1)").ok());
  EXPECT_FALSE(from_wire("<1234, eth0, (x)>").ok());
  EXPECT_FALSE(from_wire("<1234, eth0, (x, abc)>").ok());
  EXPECT_FALSE(from_wire("<abc, eth0>").ok());
}

TEST(ProjectTest, SelectsRequestedAttrsInOrder) {
  StatsRecord r;
  r.attrs = {{"a", 1}, {"b", 2}, {"c", 3}};
  StatsRecord p = project(r, {"c", "a", "zz"});
  ASSERT_EQ(p.attrs.size(), 2u);
  EXPECT_EQ(p.attrs[0].name, "c");
  EXPECT_EQ(p.attrs[1].name, "a");
}

TEST(ChainTopologyTest, SuccessorsTransitive) {
  ChainTopology t;
  ElementId a{"a"}, b{"b"}, c{"c"}, nfs{"nfs"};
  t.add_edge(a, b);
  t.add_edge(b, c);
  t.add_edge(b, nfs);  // branch
  auto succ = t.successors(a);
  EXPECT_EQ(succ.size(), 3u);
  EXPECT_TRUE(succ.count(c));
  EXPECT_TRUE(succ.count(nfs));
  EXPECT_FALSE(succ.count(a));
}

TEST(ChainTopologyTest, PredecessorsTransitive) {
  ChainTopology t;
  ElementId a{"a"}, b{"b"}, c{"c"};
  t.add_edge(a, b);
  t.add_edge(b, c);
  auto pred = t.predecessors(c);
  EXPECT_EQ(pred.size(), 2u);
  EXPECT_TRUE(pred.count(a));
  EXPECT_TRUE(pred.count(b));
}

TEST(ChainTopologyTest, IsolatedNode) {
  ChainTopology t;
  ElementId x{"x"};
  t.add_node(x);
  EXPECT_TRUE(t.has_node(x));
  EXPECT_TRUE(t.successors(x).empty());
  EXPECT_TRUE(t.predecessors(x).empty());
}

}  // namespace
}  // namespace perfsight
