// Stream-layer edge cases: multi-input apps, per-VM budget sharing across
// connections, dynamic vNIC rate changes, buffer-cap boundary conditions.
#include <gtest/gtest.h>

#include "mbox/app.h"
#include "mbox/presets.h"
#include "mbox/stream.h"
#include "sim/simulator.h"

namespace perfsight::mbox {
namespace {

using namespace literals;

struct Rig {
  sim::Simulator sim{Duration::millis(1)};
  StreamMachine m{StreamMachineConfig{"m0", 8, 25.0e9, 16.0}, &sim};

  StreamVm* vm(const std::string& n, DataRate r = 100_mbps) {
    StreamVmConfig cfg;
    cfg.name = n;
    cfg.vnic = r;
    return m.add_vm(cfg);
  }
  StreamConn* conn(StreamVm* a, StreamVm* b, StreamConnConfig cfg = {}) {
    if (cfg.name.empty()) cfg.name = a->name() + "-" + b->name();
    return m.connect(a, b, cfg);
  }
};

TEST(StreamEdgeTest, TwoConnsShareDestinationIngress) {
  Rig rig;
  StreamVm* a = rig.vm("a", 100_mbps);
  StreamVm* b = rig.vm("b", 100_mbps);
  StreamVm* dst = rig.vm("dst", 100_mbps);
  StreamConn* c1 = rig.conn(a, dst);
  StreamConn* c2 = rig.conn(b, dst);
  auto* s1 = rig.m.add_app(a, "s1", presets::client_unbounded());
  s1->add_output(c1, 1.0);
  auto* s2 = rig.m.add_app(b, "s2", presets::client_unbounded());
  s2->add_output(c2, 1.0);
  auto* sink = rig.m.add_app(dst, "sink", presets::server(10_gbps));
  sink->add_input(c1);
  sink->add_input(c2);

  rig.sim.run_for(4_s);
  // The destination vNIC (100 Mbps) is the shared limit: together they
  // deliver ~100 Mbps, not 200.
  double total =
      static_cast<double>(c1->delivered_bytes() + c2->delivered_bytes()) * 8 /
      4.0 / 1e6;
  EXPECT_NEAR(total, 100.0, 10.0);
  // Both senders make progress (the per-tick budget is shared, not
  // monopolized).
  EXPECT_GT(c1->delivered_bytes(), 0u);
  EXPECT_GT(c2->delivered_bytes(), 0u);
}

TEST(StreamEdgeTest, EgressBudgetSharedAcrossOutputs) {
  Rig rig;
  StreamVm* src = rig.vm("src", 100_mbps);
  StreamVm* d1 = rig.vm("d1", 100_mbps);
  StreamVm* d2 = rig.vm("d2", 100_mbps);
  StreamConn* c1 = rig.conn(src, d1);
  StreamConn* c2 = rig.conn(src, d2);
  StreamAppConfig lb = presets::load_balancer();
  lb.gen_bytes_per_sec = 1e15;
  auto* app = rig.m.add_app(src, "lb", lb);
  app->add_output(c1, 0.5);
  app->add_output(c2, 0.5);
  auto* k1 = rig.m.add_app(d1, "k1", presets::server(10_gbps));
  k1->add_input(c1);
  auto* k2 = rig.m.add_app(d2, "k2", presets::server(10_gbps));
  k2->add_input(c2);

  rig.sim.run_for(4_s);
  // The source's 100 Mbps vNIC caps the SUM of the two connections.
  double total =
      static_cast<double>(c1->delivered_bytes() + c2->delivered_bytes()) * 8 /
      4.0 / 1e6;
  EXPECT_NEAR(total, 100.0, 10.0);
}

TEST(StreamEdgeTest, VnicRateChangeTakesEffect) {
  Rig rig;
  StreamVm* a = rig.vm("a", 100_mbps);
  StreamVm* b = rig.vm("b", 100_mbps);
  StreamConn* c = rig.conn(a, b);
  auto* src = rig.m.add_app(a, "src", presets::client_unbounded());
  src->add_output(c, 1.0);
  auto* dst = rig.m.add_app(b, "dst", presets::server(10_gbps));
  dst->add_input(c);

  rig.sim.run_for(2_s);
  uint64_t at_100 = c->delivered_bytes();
  // The operator resizes both vNICs (scale-up).
  a->set_vnic_rate(300_mbps);
  b->set_vnic_rate(300_mbps);
  rig.sim.run_for(2_s);
  uint64_t delta = c->delivered_bytes() - at_100;
  EXPECT_NEAR(static_cast<double>(delta) * 8 / 2.0 / 1e6, 300.0, 30.0);
}

TEST(StreamEdgeTest, SinkWithNoTrafficStaysIdle) {
  Rig rig;
  StreamVm* a = rig.vm("a");
  StreamVm* b = rig.vm("b");
  StreamConn* c = rig.conn(a, b);
  auto* dst = rig.m.add_app(b, "dst", presets::server(10_gbps));
  dst->add_input(c);
  rig.sim.run_for(1_s);
  EXPECT_EQ(dst->stats().bytes_in.value(), 0u);
  // An idle reader accumulates input (block) time — it IS ReadBlocked.
  EXPECT_GT(dst->stats().in_time.nanos(), 0.9e9);
}

TEST(StreamEdgeTest, TinyBuffersStillMakeProgress) {
  Rig rig;
  StreamVm* a = rig.vm("a");
  StreamVm* b = rig.vm("b");
  StreamConnConfig cc;
  cc.name = "tiny";
  cc.sbuf_cap = 16 * 1024;  // just above one tick's 12.5 KB at 100 Mbps
  cc.rbuf_cap = 16 * 1024;
  StreamConn* c = rig.conn(a, b, cc);
  auto* src = rig.m.add_app(a, "src", presets::client_unbounded());
  src->add_output(c, 1.0);
  auto* dst = rig.m.add_app(b, "dst", presets::server(10_gbps));
  dst->add_input(c);
  rig.sim.run_for(2_s);
  double rate = static_cast<double>(c->delivered_bytes()) * 8 / 2.0 / 1e6;
  EXPECT_GT(rate, 60.0);  // reduced by quantisation, but flowing
}

TEST(StreamEdgeTest, ZeroShareOutputCarriesNothing) {
  Rig rig;
  StreamVm* a = rig.vm("a");
  StreamVm* b = rig.vm("b");
  StreamVm* idle = rig.vm("idle");
  StreamConn* main_conn = rig.conn(a, b);
  StreamConn* idle_conn = rig.conn(a, idle);
  StreamAppConfig lb = presets::load_balancer();
  lb.gen_bytes_per_sec = 1e15;
  auto* app = rig.m.add_app(a, "lb", lb);
  app->add_output(main_conn, 1.0);
  app->add_output(idle_conn, 0.0);
  auto* sink = rig.m.add_app(b, "sink", presets::server(10_gbps));
  sink->add_input(main_conn);
  rig.sim.run_for(1_s);
  EXPECT_EQ(idle_conn->delivered_bytes(), 0u);
  EXPECT_GT(main_conn->delivered_bytes(), 10000000u);
}

TEST(StreamEdgeTest, RerouteViaShareChangeShiftsTraffic) {
  Rig rig;
  StreamVm* a = rig.vm("a", 200_mbps);
  StreamVm* b1 = rig.vm("b1", 200_mbps);
  StreamVm* b2 = rig.vm("b2", 200_mbps);
  StreamConn* c1 = rig.conn(a, b1);
  StreamConn* c2 = rig.conn(a, b2);
  StreamAppConfig lb = presets::load_balancer();
  lb.gen_bytes_per_sec = (100_mbps).bytes_per_sec();
  auto* app = rig.m.add_app(a, "lb", lb);
  app->add_output(c1, 1.0);
  app->add_output(c2, 0.0);
  auto* k1 = rig.m.add_app(b1, "k1", presets::server(10_gbps));
  k1->add_input(c1);
  auto* k2 = rig.m.add_app(b2, "k2", presets::server(10_gbps));
  k2->add_input(c2);

  rig.sim.run_for(2_s);
  EXPECT_EQ(c2->delivered_bytes(), 0u);
  app->set_output_share(0, 0.5);
  app->set_output_share(1, 0.5);
  rig.sim.run_for(2_s);
  // Both branches now carry ~50 Mbps.
  double r1 = static_cast<double>(c1->delivered_bytes()) * 8 / 1e6;
  double r2 = static_cast<double>(c2->delivered_bytes()) * 8 / 1e6;
  EXPECT_GT(r2, 80);            // ~50 Mbps * 2 s
  EXPECT_GT(r1, 1.5 * r2);      // first branch carried traffic the whole run
}

}  // namespace
}  // namespace perfsight::mbox
