// Stream-layer behaviour: backpressure, VM ingress throttling, and the
// blocked-state accounting Algorithm 2 depends on.
#include "mbox/stream.h"

#include <gtest/gtest.h>

#include "mbox/app.h"
#include "mbox/presets.h"
#include "sim/simulator.h"

namespace perfsight::mbox {
namespace {

using namespace literals;

TEST(ByteBufTest, PushPopWithinCap) {
  ByteBuf b(100);
  EXPECT_EQ(b.push(60), 60u);
  EXPECT_EQ(b.push(60), 40u);  // clipped at cap
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.pop(30), 30u);
  EXPECT_EQ(b.space(), 30u);
  EXPECT_EQ(b.pop(1000), 70u);
  EXPECT_EQ(b.size(), 0u);
}

class StreamFixture : public ::testing::Test {
 protected:
  StreamFixture() : sim_(Duration::millis(1)) {
    machine_ = std::make_unique<StreamMachine>(
        StreamMachineConfig{"m0", 8, 25.0e9, 16.0}, &sim_);
  }

  StreamVm* vm(const std::string& name, DataRate vnic = 100_mbps) {
    StreamVmConfig cfg;
    cfg.name = name;
    cfg.vnic = vnic;
    return machine_->add_vm(cfg);
  }
  StreamConn* conn(StreamVm* s, StreamVm* d) {
    StreamConnConfig cfg;
    cfg.name = s->name() + "-" + d->name();
    return machine_->connect(s, d, cfg);
  }

  // Counter snapshot for windowed b/t measurement (what Algorithm 2 does:
  // deltas over a window, so start-up transients don't pollute the rates).
  struct Snap {
    uint64_t in_bytes, in_ns, out_bytes, out_ns;
  };
  static Snap snap(const StreamApp* a) {
    return {a->stats().bytes_in.value(), a->stats().in_time.nanos(),
            a->stats().bytes_out.value(), a->stats().out_time.nanos()};
  }
  static double in_rate_mbps(const StreamApp* a, const Snap& s0 = {}) {
    double t = static_cast<double>(a->stats().in_time.nanos() - s0.in_ns) / 1e9;
    return t <= 0 ? -1
                  : static_cast<double>(a->stats().bytes_in.value() -
                                        s0.in_bytes) *
                        8 / t / 1e6;
  }
  static double out_rate_mbps(const StreamApp* a, const Snap& s0 = {}) {
    double t =
        static_cast<double>(a->stats().out_time.nanos() - s0.out_ns) / 1e9;
    return t <= 0 ? -1
                  : static_cast<double>(a->stats().bytes_out.value() -
                                        s0.out_bytes) *
                        8 / t / 1e6;
  }

  sim::Simulator sim_;
  std::unique_ptr<StreamMachine> machine_;
};

TEST_F(StreamFixture, ConnDeliversAtLinkRate) {
  StreamVm* a = vm("a");
  StreamVm* b = vm("b");
  StreamConn* c = conn(a, b);
  StreamApp* src = machine_->add_app(a, "src", presets::client_unbounded());
  src->add_output(c, 1.0);
  StreamApp* dst =
      machine_->add_app(b, "dst", presets::server(DataRate::gbps(10)));
  dst->add_input(c);

  sim_.run_for(2_s);
  // 100 Mbps for 2 s = 25 MB.
  EXPECT_NEAR(static_cast<double>(c->delivered_bytes()), 25e6, 0.05 * 25e6);
}

TEST_F(StreamFixture, SlowReceiverBackpressuresSender) {
  StreamVm* a = vm("a");
  StreamVm* b = vm("b");
  StreamConn* c = conn(a, b);
  StreamApp* src = machine_->add_app(a, "src", presets::client_unbounded());
  src->add_output(c, 1.0);
  StreamApp* dst = machine_->add_app(b, "dst", presets::server(20_mbps));
  dst->add_input(c);

  sim_.run_for(2_s);  // let buffers fill
  uint64_t before = c->delivered_bytes();
  sim_.run_for(4_s);
  // Steady-state delivery converges to the receiver's service rate...
  EXPECT_NEAR(static_cast<double>(c->delivered_bytes() - before), 10e6,
              0.1 * 10e6);
  // ...the sender becomes WriteBlocked (b/t_out < 100 Mbps)...
  double out_rate = out_rate_mbps(src);
  EXPECT_GE(out_rate, 0);
  EXPECT_LT(out_rate, 60);
  // ...and the busy receiver does NOT look ReadBlocked.
  EXPECT_GT(in_rate_mbps(dst), 100);
}

TEST_F(StreamFixture, SlowSenderStarvesReader) {
  StreamVm* a = vm("a");
  StreamVm* b = vm("b");
  StreamConn* c = conn(a, b);
  StreamApp* src = machine_->add_app(a, "src", presets::client(15_mbps));
  src->add_output(c, 1.0);
  StreamApp* dst =
      machine_->add_app(b, "dst", presets::server(DataRate::gbps(10)));
  dst->add_input(c);

  sim_.run_for(4_s);
  // The reader is ReadBlocked: b/t_in ~= the 15 Mbps arrival rate.
  double in_rate = in_rate_mbps(dst);
  EXPECT_GE(in_rate, 0);
  EXPECT_LT(in_rate, 60);
  // The slow sender itself is NOT WriteBlocked (it idles in generation).
  double src_out = out_rate_mbps(src);
  EXPECT_GT(src_out, 100);
}

TEST_F(StreamFixture, RelayChainPropagatesBackpressure) {
  StreamVm* a = vm("a"), *b = vm("b"), *c_vm = vm("c");
  StreamConn* ab = conn(a, b);
  StreamConn* bc = conn(b, c_vm);
  StreamApp* src = machine_->add_app(a, "src", presets::client_unbounded());
  src->add_output(ab, 1.0);
  StreamApp* relay = machine_->add_app(b, "relay", presets::content_filter());
  relay->add_input(ab);
  relay->add_output(bc, 1.0);
  StreamApp* sink = machine_->add_app(c_vm, "sink", presets::server(25_mbps));
  sink->add_input(bc);

  sim_.run_for(2_s);  // let buffers fill
  uint64_t before = bc->delivered_bytes();
  sim_.run_for(4_s);
  // Steady-state end-to-end rate equals the sink's service rate; the relay
  // shows WriteBlocked, the source too.
  EXPECT_NEAR(static_cast<double>(bc->delivered_bytes() - before), 12.5e6,
              0.1 * 12.5e6);
  EXPECT_LT(out_rate_mbps(relay), 60);
  EXPECT_LT(out_rate_mbps(src), 60);
  EXPECT_GT(in_rate_mbps(relay), 100);  // its rbuf is always full
}

TEST_F(StreamFixture, MemHogThrottlesVmIngressAndDropsAtTun) {
  StreamVm* a = vm("a", 500_mbps);
  StreamVm* b = vm("b", 500_mbps);
  StreamConn* c = conn(a, b);
  StreamApp* src = machine_->add_app(a, "src", presets::client_unbounded());
  src->add_output(c, 1.0);
  StreamApp* dst =
      machine_->add_app(b, "dst", presets::server(DataRate::gbps(10)));
  dst->add_input(c);

  sim_.run_for(2_s);
  uint64_t before = c->delivered_bytes();
  EXPECT_EQ(b->tun()->stats().drop_pkts.value(), 0u);

  vm::MemHog* hog = machine_->add_mem_hog("hog");
  hog->set_demand_bytes_per_sec(24.5e9);
  sim_.run_for(2_s);
  uint64_t during = c->delivered_bytes() - before;

  // Healthy phase ran at ~500 Mbps (125 MB / 2 s); contention cuts it.
  EXPECT_LT(static_cast<double>(during), 0.7 * 125e6);
  // The throttled VM's TUN shows drops, and the reader is starved.
  EXPECT_GT(b->tun()->stats().drop_pkts.value(), 100u);
  EXPECT_LT(b->ingress_scale(), 0.95);
}

TEST_F(StreamFixture, CoupledOutputStallsOnBlockedLog) {
  StreamVm* a = vm("a"), *b = vm("b"), *s_vm = vm("s"), *log_vm = vm("log");
  StreamConn* ab = conn(a, b);
  StreamConn* bs = conn(b, s_vm);
  StreamConn* blog = conn(b, log_vm);
  StreamApp* src = machine_->add_app(a, "src", presets::client_unbounded());
  src->add_output(ab, 1.0);
  StreamApp* cf = machine_->add_app(b, "cf", presets::content_filter());
  cf->add_input(ab);
  cf->add_output(bs, 1.0);
  cf->add_output(blog, 0.1);
  StreamApp* server =
      machine_->add_app(s_vm, "server", presets::server(DataRate::gbps(10)));
  server->add_input(bs);
  // The log store serves only 0.5 Mbps -> CF is limited to ~5 Mbps.
  StreamApp* logsrv = machine_->add_app(log_vm, "log",
                                        presets::server(DataRate::mbps(0.5)));
  logsrv->add_input(blog);

  sim_.run_for(10_s);  // both log buffers must fill before coupling binds
  uint64_t before = bs->delivered_bytes();
  Snap cf0 = snap(cf), log0 = snap(logsrv);
  sim_.run_for(4_s);
  double main_rate =
      static_cast<double>(bs->delivered_bytes() - before) * 8 / 4.0 / 1e6;
  EXPECT_LT(main_rate, 12.0);  // ~10x the log rate, far below 100 Mbps
  EXPECT_LT(out_rate_mbps(cf, cf0), 60);       // CF WriteBlocked
  EXPECT_GT(in_rate_mbps(logsrv, log0), 100);  // the log store looks busy
}

TEST_F(StreamFixture, IndependentOutputsIsolateBlockedBackend) {
  StreamVm* a = vm("a"), *b1 = vm("b1"), *b2 = vm("b2");
  StreamConn* c1 = conn(a, b1);
  StreamConn* c2 = conn(a, b2);
  StreamAppConfig lb_cfg = presets::load_balancer();
  lb_cfg.gen_bytes_per_sec = 1e15;  // source-LB hybrid for simplicity
  StreamApp* lb = machine_->add_app(a, "lb", lb_cfg);
  lb->add_output(c1, 0.5);
  lb->add_output(c2, 0.5);
  StreamApp* fast =
      machine_->add_app(b1, "fast", presets::server(DataRate::gbps(10)));
  fast->add_input(c1);
  StreamApp* slow = machine_->add_app(b2, "slow", presets::server(1_mbps));
  slow->add_input(c2);

  sim_.run_for(4_s);
  // The fast backend keeps receiving at its share of the vNIC rate even
  // though the slow backend's buffer is jammed.
  double fast_rate =
      static_cast<double>(c1->delivered_bytes()) * 8 / 4.0 / 1e6;
  EXPECT_GT(fast_rate, 30.0);
  double slow_rate =
      static_cast<double>(c2->delivered_bytes()) * 8 / 4.0 / 1e6;
  EXPECT_LT(slow_rate, 3.0);
}

TEST_F(StreamFixture, AppCollectExportsAlgorithm2Attrs) {
  StreamVm* a = vm("a");
  StreamVm* b = vm("b");
  StreamConn* c = conn(a, b);
  StreamApp* src = machine_->add_app(a, "src", presets::client(50_mbps));
  src->add_output(c, 1.0);
  StreamApp* dst =
      machine_->add_app(b, "dst", presets::server(DataRate::gbps(10)));
  dst->add_input(c);
  sim_.run_for(1_s);

  StatsRecord r = dst->collect(sim_.now());
  EXPECT_TRUE(r.get(attr::kInBytes).has_value());
  EXPECT_TRUE(r.get(attr::kInTimeNs).has_value());
  EXPECT_EQ(r.get(attr::kCapacityMbps), 100.0);
  EXPECT_GT(*r.get(attr::kInBytes), 1e6);
}

}  // namespace
}  // namespace perfsight::mbox
