// Push-mode streaming telemetry: the streamed-vs-sweep fidelity gate.
//
// The contract under test (streaming.h): a diagnosis stack fed from the
// materialized stream cache produces output BYTE-IDENTICAL to the same
// stack running pull sweeps against the live agents — same Algorithm 1/2
// rankings, same blind-spot/coverage annotations, same alert firings —
// clean, under a fault campaign with scheduled outages, with stream frames
// dropped in transit (gap → targeted pull repair), and at pool sizes 1 and
// 4.  The differential runs the same seeded scenario through twin worlds
// sharing the same pure time-keyed sources, concatenates every report into
// one transcript per world, and string-compares the transcripts.
//
// Also here: the StreamCache gap state machine (gap → repair → re-apply,
// publisher-restart rebase), the remote kSubscribe/kStreamData path end to
// end (snapshot-first, injected skip → client-visible gap, reconnect), the
// zero-bytes-when-unsubscribed guarantee, and a TSan churn variant racing
// subscriber reconnects against publish ticks.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/faults.h"
#include "perfsight/monitor.h"
#include "perfsight/remote_agent.h"
#include "perfsight/rootcause.h"
#include "perfsight/rulebook.h"
#include "perfsight/streaming.h"
#include "perfsight/transport.h"
#include "perfsight/wire.h"

namespace perfsight {
namespace {

constexpr TenantId kTenant{1};
const Duration kWindow = Duration::millis(100);

// A source whose attrs are a pure function of the query time.  Both worlds
// of a differential share the same FnSource objects: there is no state to
// mutate, so a capture at boundary t, a pull sweep at t, and a repair pull
// replaying t all read identical bits — from any thread.
class FnSource : public StatsSource {
 public:
  using Fn = std::function<std::vector<Attr>(SimTime)>;
  FnSource(std::string id, ChannelKind kind, Fn fn)
      : id_{std::move(id)}, kind_(kind), fn_(std::move(fn)) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = fn_(now);
    return r;
  }

 private:
  ElementId id_;
  ChannelKind kind_;
  Fn fn_;
};

// Windows elapsed at t (fractional).
double win(SimTime t) {
  return static_cast<double>(t.ns()) / static_cast<double>(kWindow.ns());
}

// Two machines.  m0's pNIC leaks 800 pkts per window (Algorithm 1 finds a
// shared-kind contention); m1 is healthy.  m0 also hosts a two-middlebox
// chain for Algorithm 2.  m1/pnic is mirrored onto a0, so an outage of a1
// exercises the quorum path while a1's TUNs become blind spots.
std::vector<std::unique_ptr<FnSource>> make_scenario() {
  auto counter = [](double per_window) {
    return [per_window](SimTime t) { return per_window * win(t); };
  };
  auto c = counter;  // brevity below
  std::vector<std::unique_ptr<FnSource>> out;
  auto add = [&](std::string name, ChannelKind kind,
                 std::vector<std::pair<std::string,
                                       std::function<double(SimTime)>>> fns) {
    out.push_back(std::make_unique<FnSource>(
        std::move(name), kind, [fns = std::move(fns)](SimTime t) {
          std::vector<Attr> attrs;
          attrs.reserve(fns.size());
          for (const auto& [k, f] : fns) attrs.push_back({k, f(t)});
          return attrs;
        }));
  };
  auto gauge = [](double v) { return [v](SimTime) { return v; }; };
  const double kPNicKind = static_cast<double>(ElementKind::kPNic);
  const double kTunKind = static_cast<double>(ElementKind::kTun);
  const double kMbKind = static_cast<double>(ElementKind::kMiddleboxApp);

  add("m0/pnic", ChannelKind::kNetDeviceFile,
      {{attr::kRxPkts, c(12000)}, {attr::kTxPkts, c(11200)},
       {attr::kDropPkts, c(800)}, {attr::kType, gauge(kPNicKind)},
       {attr::kVm, gauge(-1)}});
  add("m1/pnic", ChannelKind::kNetDeviceFile,
      {{attr::kRxPkts, c(9000)}, {attr::kTxPkts, c(9000)},
       {attr::kDropPkts, c(0)}, {attr::kType, gauge(kPNicKind)},
       {attr::kVm, gauge(-1)}});
  add("m0/vm0/tun", ChannelKind::kProcFs,
      {{attr::kRxPkts, c(6000)}, {attr::kTxPkts, c(6000)},
       {attr::kType, gauge(kTunKind)}, {attr::kVm, gauge(0)}});
  add("m0/vm1/tun", ChannelKind::kProcFs,
      {{attr::kRxPkts, c(5000)}, {attr::kTxPkts, c(5000)},
       {attr::kType, gauge(kTunKind)}, {attr::kVm, gauge(1)}});
  add("m1/vm0/tun", ChannelKind::kProcFs,
      {{attr::kRxPkts, c(4000)}, {attr::kTxPkts, c(4000)},
       {attr::kType, gauge(kTunKind)}, {attr::kVm, gauge(0)}});
  add("m1/vm1/tun", ChannelKind::kProcFs,
      {{attr::kRxPkts, c(3000)}, {attr::kTxPkts, c(3000)},
       {attr::kType, gauge(kTunKind)}, {attr::kVm, gauge(1)}});
  // mb0: input arrives faster than it drains (ReadBlocked side signal);
  // mb1 keeps up.  Capacity is a gauge.
  add("m0/mb0", ChannelKind::kMbSocket,
      {{attr::kInBytes, c(8e6)}, {attr::kInTimeNs, c(9e7)},
       {attr::kOutBytes, c(8e6)}, {attr::kOutTimeNs, c(9.5e7)},
       {attr::kCapacityMbps, gauge(1000)}, {attr::kType, gauge(kMbKind)},
       {attr::kVm, gauge(-1)}});
  add("m0/mb1", ChannelKind::kMbSocket,
      {{attr::kInBytes, c(8e6)}, {attr::kInTimeNs, c(6.3e7)},
       {attr::kOutBytes, c(8e6)}, {attr::kOutTimeNs, c(6.3e7)},
       {attr::kCapacityMbps, gauge(1000)}, {attr::kType, gauge(kMbKind)},
       {attr::kVm, gauge(-1)}});
  return out;
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// Exact (bit-level) attr equality: fidelity means identical doubles, not
// merely close ones.
void expect_attrs_eq(const std::vector<Attr>& got, const std::vector<Attr>& want,
                     const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name) << ctx;
    EXPECT_EQ(got[i].value, want[i].value) << ctx << " attr " << got[i].name;
  }
}

RetryPolicy lenient_retry() {
  RetryPolicy p;
  p.max_attempts = 2;
  return p;
}

CircuitBreakerConfig no_breakers() {
  return CircuitBreakerConfig{1u << 30, Duration::millis(20)};
}

// One world: a controller + two agents over the shared scenario sources.
// In streamed mode the controller talks to StreamCacheAgents fed by a
// StreamPipeline; in pull mode it talks to the live agents directly.
class Rig {
 public:
  Rig(const std::vector<std::unique_ptr<FnSource>>& sources,
      const FaultPlan* plan, bool streamed, ThreadPool* pool)
      : streamed_(streamed) {
    a0_ = std::make_unique<Agent>("a0", 11);
    a1_ = std::make_unique<Agent>("a1", 12);
    for (const auto& s : sources) {
      Agent* owner = starts_with(s->id().name, "m0/") ? a0_.get() : a1_.get();
      EXPECT_TRUE(owner->add_element(s.get()).is_ok());
      // a0 doubles as the read replica for m1/pnic.
      if (s->id().name == "m1/pnic") {
        EXPECT_TRUE(a0_->add_element(s.get()).is_ok());
      }
    }
    for (Agent* a : {a0_.get(), a1_.get()}) {
      a->set_fault_plan(plan);
      a->set_retry_policy(lenient_retry());
      a->set_breaker_config(no_breakers());
    }

    AgentClient* c0 = a0_.get();
    AgentClient* c1 = a1_.get();
    if (streamed_) {
      pipe_ = std::make_unique<StreamPipeline>(&cache_, plan);
      pipe_->add_agent(a0_.get());
      pipe_->add_agent(a1_.get());
      ca0_ = std::make_unique<StreamCacheAgent>(&cache_, *a0_);
      ca1_ = std::make_unique<StreamCacheAgent>(&cache_, *a1_);
      c0 = ca0_.get();
      c1 = ca1_.get();
    }

    ctl_ = std::make_unique<Controller>(
        [this](Duration d) {
          now_ = now_ + d;
          return now_;
        },
        [this] { return now_; });
    ctl_->register_agent(c0);
    ctl_->register_agent(c1);
    for (const auto& s : sources) {
      AgentClient* owner = starts_with(s->id().name, "m0/") ? c0 : c1;
      EXPECT_TRUE(ctl_->register_element(kTenant, s->id(), owner).is_ok());
      const bool stack = s->id().name.find("pnic") != std::string::npos ||
                         s->id().name.find("tun") != std::string::npos;
      if (stack) ctl_->register_stack_element(owner, s->id());
    }
    EXPECT_TRUE(ctl_->register_mirror(kTenant, ElementId{"m1/pnic"}, c0).is_ok());
    ctl_->register_middlebox(kTenant, ElementId{"m0/mb0"});
    ctl_->register_middlebox(kTenant, ElementId{"m0/mb1"});
    ctl_->add_chain_edge(kTenant, ElementId{"m0/mb0"}, ElementId{"m0/mb1"});
    ctl_->set_pool(pool);
  }

  Controller& ctl() { return *ctl_; }
  void set_now(SimTime t) { now_ = t; }
  void pump(SimTime at, ThreadPool* pool) {
    ASSERT_TRUE(streamed_);
    Status st = pipe_->pump(at, pool);
    EXPECT_TRUE(st.is_ok()) << st.message();
  }
  const StreamCache& cache() const { return cache_; }
  StreamPipeline* pipe() { return pipe_.get(); }

 private:
  bool streamed_;
  SimTime now_;
  std::unique_ptr<Agent> a0_, a1_;
  StreamCache cache_;
  std::unique_ptr<StreamPipeline> pipe_;
  std::unique_ptr<StreamCacheAgent> ca0_, ca1_;
  std::unique_ptr<Controller> ctl_;
};

// The identical diagnosis script both worlds run: per boundary k the
// streamed world pumps the window at kW first, then BOTH worlds replay
// diagnosis for the window [(k-1)W, kW] — one window behind the stream, so
// every sweep instant the detectors touch is already materialized.
std::string run_script(Rig& rig, bool streamed, ThreadPool* pool) {
  ContentionDetector det(&rig.ctl(), RuleBook::standard());
  det.set_loss_threshold(10);
  det.set_pool(pool);
  RootCauseAnalyzer rca(&rig.ctl());
  Monitor mon(&rig.ctl(), kTenant);
  mon.watch(ElementId{"m0/pnic"}, attr::kDropPkts);
  mon.watch(ElementId{"m1/pnic"}, attr::kRxPkts);
  mon.watch(ElementId{"m0/mb0"}, attr::kInBytes);
  AlertWatcher watcher(&mon, &det, &rca);
  watcher.set_pool(pool);
  AlertRule drops;
  drops.name = "pnic-drops";
  drops.element = ElementId{"m0/pnic"};
  drops.attr = attr::kDropPkts;
  drops.on_rate = true;
  drops.threshold = 5000;  // scenario leaks 8000 pkts/s
  drops.action = AlertRule::Action::kContention;
  drops.window = kWindow;
  drops.cooldown = Duration::millis(250);
  watcher.add_rule(drops);
  AlertRule inflow;
  inflow.name = "mb-inflow";
  inflow.element = ElementId{"m0/mb0"};
  inflow.attr = attr::kInBytes;
  inflow.on_rate = true;
  inflow.threshold = 1e7;  // scenario flows 8e7 B/s through mb0
  inflow.action = AlertRule::Action::kRootCause;
  inflow.window = kWindow;
  inflow.cooldown = Duration::millis(350);
  watcher.add_rule(inflow);

  // Diagnosis replays TWO windows behind the stream's live edge: each
  // alert-triggered diagnosis advances the clock by one window, and both
  // rules can fire in the same check(), so a cascade starting at (k-2)W
  // reaches at most kW — exactly the boundary just pumped.  The replay lag
  // must cover the furthest instant the diagnosis chain itself can touch.
  if (streamed) {
    rig.pump(SimTime{}, pool);
    rig.pump(SimTime::millis(100), pool);
  }
  std::string out;
  for (int k = 2; k <= 11; ++k) {
    const SimTime tk = SimTime::millis(100 * k);
    const SimTime tlo = SimTime::millis(100 * (k - 2));
    if (streamed) rig.pump(tk, pool);
    out += "== window " + std::to_string(k - 1) + " ==\n";
    rig.set_now(tlo);
    out += to_text(det.diagnose(kTenant, kWindow));
    rig.set_now(tlo);
    out += to_text(rca.analyze(kTenant, kWindow));
    rig.set_now(tlo);
    mon.sample(pool);
    for (const Alert& a : watcher.check()) out += to_text(a);
  }
  return out;
}

struct WorldRun {
  std::string transcript;
  StreamCache::Stats stream_stats;
  uint64_t frames_dropped = 0;
};

WorldRun run_world(const std::string& plan_spec, bool streamed,
                   size_t pool_size) {
  std::optional<FaultPlan> plan;
  if (!plan_spec.empty()) {
    plan = FaultPlan::parse(plan_spec);
    EXPECT_TRUE(plan.has_value()) << "unparseable plan: " << plan_spec;
  }
  auto sources = make_scenario();
  ThreadPool pool(pool_size);
  Rig rig(sources, plan ? &*plan : nullptr, streamed, &pool);
  WorldRun r;
  r.transcript = run_script(rig, streamed, &pool);
  if (streamed) {
    r.stream_stats = rig.cache().stats();
    r.frames_dropped = rig.pipe()->frames_dropped();
  }
  return r;
}

// --- the fidelity gate -------------------------------------------------------

TEST(StreamingDifferentialTest, CleanScenarioByteIdentical) {
  const WorldRun pull1 = run_world("seed=11", /*streamed=*/false, 1);
  ASSERT_FALSE(pull1.transcript.empty());
  // The healthy scenario must actually diagnose something, or the gate
  // proves nothing.
  EXPECT_NE(pull1.transcript.find("CONTENTION"), std::string::npos);
  EXPECT_NE(pull1.transcript.find("pnic-drops"), std::string::npos);
  for (size_t pool_size : {size_t{1}, size_t{4}}) {
    const WorldRun pull = run_world("seed=11", false, pool_size);
    const WorldRun stream = run_world("seed=11", true, pool_size);
    EXPECT_EQ(pull1.transcript, pull.transcript) << "pool=" << pool_size;
    EXPECT_EQ(pull.transcript, stream.transcript) << "pool=" << pool_size;
  }
}

TEST(StreamingDifferentialTest, FaultCampaignByteIdentical) {
  // Channel faults + dropped stream frames + a scheduled outage of a1
  // covering window boundaries 300/400ms.  The campaign grammar string is
  // the plan: both worlds parse the same spec.
  const std::string spec =
      "seed=11,transient=0.08,timeout=0.05,torn=0.05,stream_drop=0.3,"
      "outage=a1@300-500";
  const WorldRun pull1 = run_world(spec, false, 1);
  // The campaign must actually bite: a1's unmirrored TUNs go dark, so the
  // reports carry blind-spot/coverage annotations.
  EXPECT_NE(pull1.transcript.find("blind spots"), std::string::npos);
  EXPECT_NE(pull1.transcript.find("missing"), std::string::npos);
  for (size_t pool_size : {size_t{1}, size_t{4}}) {
    const WorldRun pull = run_world(spec, false, pool_size);
    const WorldRun stream = run_world(spec, true, pool_size);
    EXPECT_EQ(pull1.transcript, pull.transcript) << "pool=" << pool_size;
    EXPECT_EQ(pull.transcript, stream.transcript) << "pool=" << pool_size;
    // With stream_drop=0.3 over 22 frames, some frames must be lost and
    // repaired by targeted pulls — the fidelity holds THROUGH the repair
    // path, not because no frame ever dropped.
    EXPECT_GT(stream.frames_dropped, 0u);
    EXPECT_EQ(stream.stream_stats.repairs, stream.frames_dropped);
    EXPECT_GT(stream.stream_stats.frames_applied, 0u);
  }
}

// --- cache gap state machine -------------------------------------------------

TEST(StreamCacheTest, GapRepairedByPullsThenReapplied) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  std::vector<ElementId> ids;
  for (const auto& s : sources) {
    if (!starts_with(s->id().name, "m0/")) continue;
    ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    ids.push_back(s->id());
  }
  StreamPublisher pub(&a0);
  std::vector<std::string> bodies;
  for (int k = 1; k <= 5; ++k) {
    Result<StreamPublisher::Published> p =
        pub.publish(SimTime::millis(100 * k));
    ASSERT_TRUE(p.ok()) << p.status().message();
    bodies.push_back(p.value().body);
  }

  StreamCache cache;
  for (int i : {0, 1}) {
    Result<StreamCache::ApplyResult> r = cache.apply(bodies[i]);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_TRUE(r.value().applied);
  }
  // Frames 3 and 4 lost in transit; frame 5 arrives and betrays the gap.
  Result<StreamCache::ApplyResult> gap = cache.apply(bodies[4]);
  ASSERT_TRUE(gap.ok()) << gap.status().message();
  EXPECT_FALSE(gap.value().applied);
  EXPECT_EQ(gap.value().seq, 5u);
  EXPECT_EQ(gap.value().expected, 3u);
  EXPECT_EQ(gap.value().missed, 2u);
  EXPECT_EQ(cache.stats().gaps, 1u);
  EXPECT_FALSE(cache.window_present("a0", SimTime::millis(300)));

  // Repair the missed windows with targeted pulls at the same boundaries,
  // then the held frame applies.
  cache.repair("a0", SimTime::millis(300),
               a0.query_batch(ids, SimTime::millis(300)));
  cache.repair("a0", SimTime::millis(400),
               a0.query_batch(ids, SimTime::millis(400)));
  Result<StreamCache::ApplyResult> again = cache.apply(bodies[4]);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_TRUE(again.value().applied);
  EXPECT_EQ(cache.next_seq("a0"), 6u);

  // Provenance is honest; the records are not distinguishable.
  EXPECT_EQ(cache.window_provenance("a0", SimTime::millis(300)),
            StreamCache::Provenance::kRepaired);
  EXPECT_EQ(cache.window_provenance("a0", SimTime::millis(500)),
            StreamCache::Provenance::kStreamed);
  for (int ms : {100, 200, 300, 400, 500}) {
    const BatchResponse direct = a0.query_batch(ids, SimTime::millis(ms));
    ASSERT_EQ(direct.responses.size(), ids.size());
    for (const QueryResponse& want : direct.responses) {
      std::optional<QueryResponse> cached =
          cache.find("a0", want.record.element, SimTime::millis(ms));
      ASSERT_TRUE(cached.has_value()) << want.record.element.name << " @ " << ms;
      expect_attrs_eq(cached->record.attrs, want.record.attrs,
                      want.record.element.name + " @ " + std::to_string(ms));
    }
  }
}

TEST(StreamCacheTest, PublisherRestartRebasesViaSnapshot) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  for (const auto& s : sources) {
    if (starts_with(s->id().name, "m0/")) {
      ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    }
  }
  StreamCache cache;
  {
    StreamPublisher pub(&a0);
    for (int k = 1; k <= 3; ++k) {
      Result<StreamPublisher::Published> p =
          pub.publish(SimTime::millis(100 * k));
      ASSERT_TRUE(p.ok());
      Result<StreamCache::ApplyResult> r = cache.apply(p.value().body);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r.value().applied);
    }
  }
  // The publisher restarts: seq falls back to 1 and its first frame is a
  // snapshot, which rebases the stream instead of erroring.
  StreamPublisher restarted(&a0);
  Result<StreamPublisher::Published> p =
      restarted.publish(SimTime::millis(400));
  ASSERT_TRUE(p.ok());
  Result<StreamCache::ApplyResult> r = cache.apply(p.value().body);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().applied);
  EXPECT_TRUE(r.value().regressed);
  EXPECT_EQ(cache.stats().resets, 1u);
  EXPECT_EQ(cache.next_seq("a0"), 2u);
  // History survives the rebase.
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(200)));
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(400)));
}

TEST(StreamCacheTest, RepairBeyondRetentionHorizonIsClamped) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  std::vector<ElementId> ids;
  for (const auto& s : sources) {
    if (!starts_with(s->id().name, "m0/")) continue;
    ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    ids.push_back(s->id());
  }
  StreamCache cache;
  cache.set_retention(3);
  StreamPublisher pub(&a0);
  for (int k = 1; k <= 8; ++k) {
    Result<StreamPublisher::Published> p =
        pub.publish(SimTime::millis(100 * k));
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(cache.apply(p.value().body).ok());
  }
  const uint64_t pruned_before = cache.stats().windows_pruned;
  const uint64_t next_before = cache.next_seq("a0");

  // A late watchdog repairs a boundary that has already aged past the
  // retention horizon (only 600..800 are retained).  The backfill must be
  // dropped whole: no resurrected window, no extra prune, no cursor damage.
  cache.repair("a0", SimTime::millis(200),
               a0.query_batch(ids, SimTime::millis(200)));
  EXPECT_FALSE(cache.window_present("a0", SimTime::millis(200)));
  EXPECT_EQ(cache.stats().windows_pruned, pruned_before);
  EXPECT_EQ(cache.stats().repairs, 0u);
  EXPECT_EQ(cache.stats().repairs_clamped, 1u);
  EXPECT_EQ(cache.next_seq("a0"), next_before);

  // The live edge is untouched: the next in-order frame still applies.
  Result<StreamPublisher::Published> p9 = pub.publish(SimTime::millis(900));
  ASSERT_TRUE(p9.ok());
  Result<StreamCache::ApplyResult> r9 = cache.apply(p9.value().body);
  ASSERT_TRUE(r9.ok()) << r9.status().message();
  EXPECT_TRUE(r9.value().applied);
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(900)));
}

TEST(StreamCacheTest, RestartedPublisherDeltaFrameResyncsViaSnapshot) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  std::vector<ElementId> ids;
  for (const auto& s : sources) {
    if (!starts_with(s->id().name, "m0/")) continue;
    ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    ids.push_back(s->id());
  }
  StreamCache cache;
  {
    StreamPublisher pub(&a0);
    for (int k = 1; k <= 3; ++k) {
      Result<StreamPublisher::Published> p =
          pub.publish(SimTime::millis(100 * k));
      ASSERT_TRUE(p.ok());
      ASSERT_TRUE(cache.apply(p.value().body).value().applied);
    }
  }

  // The publisher restarts with the same element set and its seq reset to
  // 1.  Its snapshot (seq 1) is lost in transit; what the subscriber first
  // sees of the new epoch is a DELTA frame (seq 2).  The old behavior was a
  // permanent failure loop: regressed -> decode without base -> hard error,
  // on every subsequent frame, forever.
  StreamPublisher restarted(&a0);
  ASSERT_TRUE(restarted.publish(SimTime::millis(400)).ok());  // lost
  Result<StreamPublisher::Published> delta =
      restarted.publish(SimTime::millis(500));
  ASSERT_TRUE(delta.ok());

  Result<StreamCache::ApplyResult> r = cache.apply(delta.value().body);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_FALSE(r.value().applied);
  EXPECT_TRUE(r.value().needs_snapshot);
  EXPECT_TRUE(r.value().regressed);
  EXPECT_EQ(cache.stats().snapshot_requests, 1u);
  // The stream cursor is untouched — no half-applied epoch.
  EXPECT_EQ(cache.next_seq("a0"), 4u);

  // The resync: the publisher re-keys the next frame as a snapshot, which
  // rebases the cache onto the new epoch.
  restarted.force_snapshot();
  Result<StreamPublisher::Published> snap =
      restarted.publish(SimTime::millis(600));
  ASSERT_TRUE(snap.ok());
  Result<StreamCache::ApplyResult> r2 = cache.apply(snap.value().body);
  ASSERT_TRUE(r2.ok()) << r2.status().message();
  EXPECT_TRUE(r2.value().applied);
  EXPECT_TRUE(r2.value().regressed);
  EXPECT_EQ(cache.next_seq("a0"), 4u);  // rebased onto the new epoch's seq 3

  // Deltas of the new epoch now flow, and every cached window carries
  // exactly the bits a direct pull at that boundary returns.
  Result<StreamPublisher::Published> next =
      restarted.publish(SimTime::millis(700));
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(cache.apply(next.value().body).value().applied);
  for (int ms : {100, 200, 300, 600, 700}) {
    const BatchResponse direct = a0.query_batch(ids, SimTime::millis(ms));
    ASSERT_EQ(direct.responses.size(), ids.size());
    for (const QueryResponse& want : direct.responses) {
      std::optional<QueryResponse> cached =
          cache.find("a0", want.record.element, SimTime::millis(ms));
      ASSERT_TRUE(cached.has_value())
          << want.record.element.name << " @ " << ms;
      expect_attrs_eq(cached->record.attrs, want.record.attrs,
                      want.record.element.name + " @ " + std::to_string(ms));
    }
  }
}

TEST(StreamPipelineTest, CacheResetMidStreamResyncsViaSnapshot) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  std::vector<ElementId> ids;
  for (const auto& s : sources) {
    if (!starts_with(s->id().name, "m0/")) continue;
    ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    ids.push_back(s->id());
  }
  StreamCache cache;
  StreamPipeline pipe(&cache, nullptr);
  pipe.add_agent(&a0);
  ASSERT_TRUE(pipe.pump(SimTime::millis(100), nullptr).is_ok());
  ASSERT_TRUE(pipe.pump(SimTime::millis(200), nullptr).is_ok());

  // The cache loses its stream state mid-run (operator restart, failover to
  // a cold replica).  The next pump ships a delta the cache cannot decode;
  // the pipeline must resync via a snapshot republish, not error out.
  cache.reset_stream("a0");
  Status st = pipe.pump(SimTime::millis(300), nullptr);
  EXPECT_TRUE(st.is_ok()) << st.message();
  EXPECT_EQ(cache.stats().snapshot_requests, 1u);
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(300)));
  // And the stream continues delta-coded afterwards.
  ASSERT_TRUE(pipe.pump(SimTime::millis(400), nullptr).is_ok());
  for (int ms : {300, 400}) {
    const BatchResponse direct = a0.query_batch(ids, SimTime::millis(ms));
    for (const QueryResponse& want : direct.responses) {
      std::optional<QueryResponse> cached =
          cache.find("a0", want.record.element, SimTime::millis(ms));
      ASSERT_TRUE(cached.has_value())
          << want.record.element.name << " @ " << ms;
      expect_attrs_eq(cached->record.attrs, want.record.attrs,
                      want.record.element.name + " @ " + std::to_string(ms));
    }
  }
}

TEST(StreamCacheTest, RetentionPrunesOldestWindows) {
  auto sources = make_scenario();
  Agent a0("a0", 11);
  for (const auto& s : sources) {
    if (starts_with(s->id().name, "m0/")) {
      ASSERT_TRUE(a0.add_element(s.get()).is_ok());
    }
  }
  StreamCache cache;
  cache.set_retention(3);
  StreamPublisher pub(&a0);
  for (int k = 1; k <= 8; ++k) {
    Result<StreamPublisher::Published> p =
        pub.publish(SimTime::millis(100 * k));
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(cache.apply(p.value().body).ok());
  }
  EXPECT_EQ(cache.stats().windows_pruned, 5u);
  EXPECT_FALSE(cache.window_present("a0", SimTime::millis(500)));
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(600)));
  EXPECT_TRUE(cache.window_present("a0", SimTime::millis(800)));
}

// --- remote kSubscribe / kStreamData ----------------------------------------

TEST(RemoteStreamingTest, UnsubscribedPublishesShipZeroBytes) {
  auto sources = make_scenario();
  Agent agent("ra", 5);
  for (const auto& s : sources) {
    if (starts_with(s->id().name, "m0/")) {
      ASSERT_TRUE(agent.add_element(s.get()).is_ok());
    }
  }
  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());

  // Publish ticks with no subscriber capture nothing and send nothing —
  // a deployment that never subscribes pays zero stream bytes.
  server.request_publish(SimTime::millis(50));
  server.request_publish(SimTime::millis(100));
  EXPECT_EQ(server.stream_frames_published(), 0u);

  // A plain request/reply client on the same server still works (streaming
  // compiled in but unused does not disturb the pull path).
  StreamSubscriber sub(server.endpoint());
  ASSERT_TRUE(sub.connect(transport::WallDuration(2000)).is_ok());
  EXPECT_EQ(sub.hello().agent_name, "ra");
  server.request_publish(SimTime::millis(150));
  Result<std::string> body = sub.next_body(transport::WallDuration(5000));
  ASSERT_TRUE(body.ok()) << body.status().message();
  EXPECT_EQ(server.stream_frames_published(), 1u);
  server.stop();
}

TEST(RemoteStreamingTest, GapRepairRecoversByteEqualState) {
  auto sources = make_scenario();
  Agent agent("ra", 5);
  std::vector<ElementId> ids;
  for (const auto& s : sources) {
    if (!starts_with(s->id().name, "m0/")) continue;
    ASSERT_TRUE(agent.add_element(s.get()).is_ok());
    ids.push_back(s->id());
  }
  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());
  StreamSubscriber sub(server.endpoint());
  ASSERT_TRUE(sub.connect(transport::WallDuration(2000)).is_ok());

  StreamCache cache;
  auto next_body = [&](int ms) {
    server.request_publish(SimTime::millis(ms));
    Result<std::string> body = sub.next_body(transport::WallDuration(5000));
    EXPECT_TRUE(body.ok()) << body.status().message();
    return body.ok() ? body.value() : std::string{};
  };

  ASSERT_TRUE(cache.apply(next_body(100)).value().applied);
  ASSERT_TRUE(cache.apply(next_body(200)).value().applied);
  server.inject_skip_next_publish();
  server.request_publish(SimTime::millis(300));  // seq 3 vanishes
  const std::string frame4 = next_body(400);
  Result<StreamCache::ApplyResult> gap = cache.apply(frame4);
  ASSERT_TRUE(gap.ok());
  EXPECT_FALSE(gap.value().applied);
  EXPECT_EQ(gap.value().missed, 1u);
  cache.repair("ra", SimTime::millis(300),
               agent.query_batch(ids, SimTime::millis(300)));
  Result<StreamCache::ApplyResult> again = cache.apply(frame4);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_TRUE(again.value().applied);

  // Reconnect: forget the delta base; the server's first frame to the new
  // connection is a snapshot and applies whatever its seq is.
  sub.close();
  StreamSubscriber sub2(server.endpoint());
  ASSERT_TRUE(sub2.connect(transport::WallDuration(2000)).is_ok());
  cache.reset_stream("ra");
  server.request_publish(SimTime::millis(500));
  Result<std::string> body5 = sub2.next_body(transport::WallDuration(5000));
  ASSERT_TRUE(body5.ok()) << body5.status().message();
  Result<StreamCache::ApplyResult> r5 = cache.apply(body5.value());
  ASSERT_TRUE(r5.ok()) << r5.status().message();
  EXPECT_TRUE(r5.value().applied);

  // Every cached window — streamed, repaired, post-reconnect — carries
  // exactly the bits a direct pull at that boundary returns.
  for (int ms : {100, 200, 300, 400, 500}) {
    const BatchResponse direct = agent.query_batch(ids, SimTime::millis(ms));
    ASSERT_EQ(direct.responses.size(), ids.size());
    for (const QueryResponse& want : direct.responses) {
      std::optional<QueryResponse> cached =
          cache.find("ra", want.record.element, SimTime::millis(ms));
      ASSERT_TRUE(cached.has_value()) << want.record.element.name << " @ " << ms;
      expect_attrs_eq(cached->record.attrs, want.record.attrs,
                      want.record.element.name + " @ " + std::to_string(ms));
    }
  }
  EXPECT_EQ(cache.window_provenance("ra", SimTime::millis(300)),
            StreamCache::Provenance::kRepaired);
  EXPECT_GT(server.stream_frames_published(), 0u);
  server.stop();
}

// TSan target: subscriber connect/read/close churn racing publish ticks.
// Run under ThreadSanitizer via --gtest_filter=*Churn*.
TEST(RemoteStreamingChurnTest, SubscriberReconnectRace) {
  auto sources = make_scenario();
  Agent agent("ra", 5);
  for (const auto& s : sources) {
    if (starts_with(s->id().name, "m0/")) {
      ASSERT_TRUE(agent.add_element(s.get()).is_ok());
    }
  }
  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> published{0};
  std::thread publisher([&] {
    int ms = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      server.request_publish(SimTime::millis(ms += 10));
      published.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  StreamCache cache;
  int frames_seen = 0;
  for (int round = 0; round < 12; ++round) {
    StreamSubscriber sub(server.endpoint());
    if (!sub.connect(transport::WallDuration(2000)).is_ok()) continue;
    cache.reset_stream("ra");
    // Read a couple of frames, then drop the connection mid-stream.
    for (int i = 0; i < 3; ++i) {
      Result<std::string> body = sub.next_body(transport::WallDuration(2000));
      if (!body.ok()) break;
      Result<StreamCache::ApplyResult> r = cache.apply(body.value());
      if (r.ok() && r.value().applied) ++frames_seen;
    }
  }
  stop.store(true);
  publisher.join();
  EXPECT_GT(frames_seen, 0);
  EXPECT_GT(published.load(), 0);
  server.stop();
}

}  // namespace
}  // namespace perfsight
