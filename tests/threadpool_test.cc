// ThreadPool semantics: inline (sequential) mode, full index coverage under
// parallel_for, chunk determinism, and wait_idle draining.
#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace perfsight {
namespace {

TEST(ThreadPoolTest, SequentialModeSpawnsNoThreadsAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.sequential());
  EXPECT_EQ(pool.workers(), 1u);

  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);

  // Inline parallel_for preserves strict 0..n-1 order.
  std::vector<size_t> order;
  pool.parallel_for(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroWorkersIsAlsoSequential) {
  ThreadPool pool(0);
  EXPECT_TRUE(pool.sequential());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.sequential());
  EXPECT_EQ(pool.workers(), 4u);

  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.parallel_for(0, [&](size_t) { FAIL() << "body ran for n=0"; });
}

TEST(ThreadPoolTest, RunAndWaitIdleDrainsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.run([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, RepeatedParallelForCallsAreIndependent) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * 45u);
}

TEST(ThreadPoolTest, ParallelForOrInlineFallsBackWithoutPool) {
  std::vector<size_t> order;
  parallel_for_or_inline(nullptr, 4, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace perfsight
