// Flight-recorder tests: ring semantics, global install/restore, the
// dataplane hooks (drop + queue watermark), and Chrome-trace export shape.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dataplane/queues.h"
#include "perfsight/json_export.h"
#include "perfsight/trace.h"

namespace perfsight {
namespace {

TEST(TraceRingTest, OverwritesOldestAndCountsDrops) {
  TraceRing ring("e0", 4);
  for (int i = 0; i < 6; ++i) {
    ring.push(SimTime::millis(i), TraceEventKind::kDrop,
              static_cast<double>(i), "d");
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_events(), 6u);
  EXPECT_EQ(ring.dropped_events(), 2u);

  // Oldest two (0, 1) were overwritten; snapshot is oldest-first.
  std::vector<TraceEvent> ev = ring.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  for (size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(ev[i].value, static_cast<double>(i + 2));
    EXPECT_EQ(ev[i].element, "e0");
  }
  EXPECT_LE(ev.front().t.ns(), ev.back().t.ns());
}

TEST(TraceRecorderTest, DisabledRecorderIsNoOp) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  rec.record(ElementId{"e"}, SimTime::millis(1), TraceEventKind::kDrop, 1);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.total_events(), 0u);
}

TEST(TraceRecorderTest, InstallRoutesHooksAndRestores) {
  // Default global recorder is disabled: hooks cost one branch, record
  // nothing.
  ASSERT_FALSE(trace_enabled());
  trace_event_now(ElementId{"x"}, TraceEventKind::kDrop, 1, "ignored");
  EXPECT_EQ(TraceRecorder::global().total_events(), 0u);

  {
    ScopedTraceRecorder scoped;
    ASSERT_TRUE(trace_enabled());
    TraceRecorder::global().set_now(SimTime::millis(7));
    trace_event_now(ElementId{"x"}, TraceEventKind::kAlertFired, 3.5, "hi");
    std::vector<TraceEvent> ev = scoped.recorder().events();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].t.ms(), 7);
    EXPECT_EQ(ev[0].kind, TraceEventKind::kAlertFired);
    EXPECT_DOUBLE_EQ(ev[0].value, 3.5);
    EXPECT_EQ(ev[0].detail, "hi");
  }
  // Scope exit restores the (disabled) default.
  EXPECT_FALSE(trace_enabled());
}

TEST(TraceHooksTest, TunOverflowRecordsDropWithRulebookCause) {
  ScopedTraceRecorder scoped;
  dp::Tun tun(ElementId{"m0/tun0"}, /*vm=*/0, QueueCaps{10, UINT64_MAX});
  tun.accept(PacketBatch{FlowId{1}, 30, 30 * 1500});

  std::vector<TraceEvent> drops;
  for (const TraceEvent& e : scoped.recorder().events_for(ElementId{"m0/tun0"})) {
    if (e.kind == TraceEventKind::kDrop) drops.push_back(e);
  }
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_DOUBLE_EQ(drops[0].value, 20.0);  // 30 offered, 10 queued
  // The detail carries the rule book's candidate resources for TUN drops.
  EXPECT_FALSE(drops[0].detail.empty());
  EXPECT_NE(drops[0].detail.find("CPU"), std::string::npos) << drops[0].detail;
}

TEST(TraceHooksTest, QueueWatermarksAreEdgeTriggered) {
  ScopedTraceRecorder scoped;
  dp::Tun tun(ElementId{"tun"}, 0, QueueCaps{100, UINT64_MAX});

  // Fill to 80% in two steps: only the 75% crossing fires.
  tun.accept(PacketBatch{FlowId{1}, 50, 50 * 100});
  tun.accept(PacketBatch{FlowId{1}, 30, 30 * 100});
  // Hover above the high mark: no extra events.
  tun.accept(PacketBatch{FlowId{1}, 5, 5 * 100});
  // Drain below 25%: exactly one low-water event.
  (void)tun.fetch(70, UINT64_MAX);

  std::vector<TraceEvent> ev = scoped.recorder().events_for(ElementId{"tun"});
  std::vector<TraceEvent> marks;
  for (const TraceEvent& e : ev) {
    if (e.kind == TraceEventKind::kQueueHighWater ||
        e.kind == TraceEventKind::kQueueLowWater) {
      marks.push_back(e);
    }
  }
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0].kind, TraceEventKind::kQueueHighWater);
  EXPECT_GE(marks[0].value, 0.75);
  EXPECT_EQ(marks[1].kind, TraceEventKind::kQueueLowWater);
  EXPECT_LE(marks[1].value, 0.25);
}

TEST(TraceRecorderTest, MergedEventsAreTimeOrdered) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record(ElementId{"b"}, SimTime::millis(5), TraceEventKind::kDrop, 1);
  rec.record(ElementId{"a"}, SimTime::millis(1), TraceEventKind::kDrop, 1);
  rec.record(ElementId{"b"}, SimTime::millis(3), TraceEventKind::kDrop, 1);
  std::vector<TraceEvent> ev = rec.events();
  ASSERT_EQ(ev.size(), 3u);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].t.ns(), ev[i].t.ns());
  }
}

// Extracts the numeric value following each occurrence of `key` in `text`.
std::vector<double> extract_numbers(const std::string& text,
                                    const std::string& key) {
  std::vector<double> out;
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    out.push_back(std::stod(text.substr(pos)));
  }
  return out;
}

TEST(ChromeTraceTest, ExportIsWellFormedAndSorted) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record(ElementId{"tun0"}, SimTime::millis(2), TraceEventKind::kDrop, 7,
             "cause: \"CPU\"");  // quote exercises escaping
  rec.record(ElementId{"pool/vm1"}, SimTime::millis(1),
             TraceEventKind::kArbiterShortfall, 0.5, "grant below demand");
  rec.record(ElementId{"tun0"}, SimTime::millis(9),
             TraceEventKind::kQueueHighWater, 0.8);

  std::string json = to_chrome_trace(rec);
  EXPECT_TRUE(json::lint(json).is_ok()) << json::lint(json).message();

  // Required Chrome-trace fields, one per event object (3 events + 2
  // thread_name metadata records).
  EXPECT_EQ(extract_numbers(json, "\"ts\":").size(), 5u);
  size_t ph_count = 0;
  for (size_t p = json.find("\"ph\":"); p != std::string::npos;
       p = json.find("\"ph\":", p + 1)) {
    ++ph_count;
  }
  EXPECT_EQ(ph_count, 5u);
  EXPECT_NE(json.find("\"name\":"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

  // Timestamps non-decreasing across the whole array (metadata first at 0,
  // then instants sorted; microseconds).
  std::vector<double> ts = extract_numbers(json, "\"ts\":");
  for (size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  EXPECT_DOUBLE_EQ(ts.back(), 9000.0);  // 9 ms in us
}

// --- spans, trace context, remote lanes --------------------------------------

TEST(TraceContextTest, ScopedInstallNestsAndRestores) {
  EXPECT_FALSE(current_trace_context().active());
  {
    ScopedTraceContext outer(TraceContext{10, 1});
    EXPECT_EQ(current_trace_context().trace_id, 10u);
    EXPECT_EQ(current_trace_context().span_id, 1u);
    {
      ScopedTraceContext inner(TraceContext{10, 2});
      EXPECT_EQ(current_trace_context().span_id, 2u);
    }
    EXPECT_EQ(current_trace_context().span_id, 1u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

TEST(TraceContextTest, SpanIdsAreUniqueAndDomainTagged) {
  const uint64_t a = next_span_id();
  const uint64_t b = next_span_id();
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 48, 0u);  // controller domain

  const uint16_t d = span_domain_for("agent-7");
  EXPECT_NE(d, 0u);
  EXPECT_EQ(d, span_domain_for("agent-7"));  // stable
  const uint64_t s = next_span_id(d);
  EXPECT_EQ(s >> 48, static_cast<uint64_t>(d));
  EXPECT_NE(s & 0xffffffffffffULL, 0u);
}

TEST(TraceRecorderTest, RingStatsAndDrain) {
  TraceRecorder rec(/*ring_capacity=*/4);
  rec.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    rec.record(ElementId{"busy"}, SimTime::millis(i), TraceEventKind::kDrop,
               i);
  }
  rec.record(ElementId{"calm"}, SimTime::millis(1), TraceEventKind::kDrop, 0);

  std::vector<TraceRecorder::RingStats> rs = rec.ring_stats();
  ASSERT_EQ(rs.size(), 2u);  // sorted by element
  EXPECT_EQ(rs[0].element, "busy");
  EXPECT_EQ(rs[0].size, 4u);
  EXPECT_EQ(rs[0].capacity, 4u);
  EXPECT_EQ(rs[0].total_events, 6u);
  EXPECT_EQ(rs[0].dropped_events, 2u);
  EXPECT_EQ(rs[1].element, "calm");
  EXPECT_EQ(rs[1].dropped_events, 0u);

  // drain(): the merged stream once, then empty — harvests never duplicate.
  std::vector<TraceEvent> drained = rec.drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_TRUE(rec.events().empty());
}

// Overwrite wrap-around keeps snapshots oldest-first even when the write
// cursor sits mid-ring (the export path depends on this ordering).
TEST(TraceRingTest, SnapshotStaysOrderedAcrossRepeatedWraps) {
  TraceRing ring("e", 8);
  for (int i = 0; i < 29; ++i) {  // 3 full wraps + 5: cursor mid-ring
    ring.push(SimTime::micros(i * 10), TraceEventKind::kDrop,
              static_cast<double>(i), "d");
  }
  std::vector<TraceEvent> ev = ring.snapshot();
  ASSERT_EQ(ev.size(), 8u);
  EXPECT_DOUBLE_EQ(ev.front().value, 21.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(ev.back().value, 28.0);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LT(ev[i - 1].t.ns(), ev[i].t.ns());
  }
}

TEST(TraceRecorderTest, RemoteLanesMergeByProcessAndClear) {
  TraceRecorder rec;
  rec.set_enabled(true);
  TraceEvent e1;
  e1.t = SimTime::millis(1);
  e1.element = "a/serve";
  e1.span_id = 5;
  TraceEvent e2 = e1;
  e2.t = SimTime::millis(2);
  e2.span_id = 6;
  rec.add_remote_lane("agent-a", 100, {e1});
  rec.add_remote_lane("agent-b", -50, {e1});
  rec.add_remote_lane("agent-a", 120, {e2});  // merges, updates offset

  std::vector<TraceRecorder::RemoteLane> lanes = rec.remote_lanes();
  ASSERT_EQ(lanes.size(), 2u);
  size_t ai = lanes[0].process == "agent-a" ? 0 : 1;
  EXPECT_EQ(lanes[ai].events.size(), 2u);
  EXPECT_EQ(lanes[ai].clock_offset_ns, 120);
  EXPECT_EQ(lanes[1 - ai].events.size(), 1u);

  rec.clear();
  EXPECT_EQ(rec.num_remote_lanes(), 0u);
}

TEST(ChromeTraceTest, SpansAndRemoteLanesExportWithResolvableParents) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const uint64_t scatter = next_span_id();
  rec.record_span(ElementId{"controller"}, SimTime::millis(1),
                  TraceEventKind::kSpanScatter, Duration::micros(400),
                  scatter, 0, 8, "scatter");

  // A harvested server lane whose clock runs 2 ms ahead: its serve span
  // covers [3ms, 3.25ms] on the remote clock = [1ms, 1.25ms] locally.
  const uint64_t serve = next_span_id(span_domain_for("agent-a"));
  TraceEvent sv;
  sv.t = SimTime::millis(3);
  sv.kind = TraceEventKind::kSpanServerBatch;
  sv.element = "agent-a/serve";
  sv.detail = "batch";
  sv.span_id = serve;
  sv.parent_span = scatter;
  sv.dur = Duration::micros(250);
  sv.value = 8;
  TraceEvent later = sv;
  later.t = SimTime::millis(4);
  later.span_id = next_span_id(span_domain_for("agent-a"));
  rec.add_remote_lane("agent-a", /*clock_offset_ns=*/2000000, {sv, later});

  const std::string json = to_chrome_trace(rec);
  EXPECT_TRUE(json::lint(json).is_ok()) << json::lint(json).message();

  // Spans render as complete events with durations.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":400"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);

  // Span ids travel as decimal strings (64-bit ids exceed JSON double
  // precision), and every server span's parent names the scatter span.
  const std::string scatter_id = "\"" + std::to_string(scatter) + "\"";
  EXPECT_NE(json.find("\"span_id\":" + scatter_id), std::string::npos);
  EXPECT_NE(json.find("\"parent_span\":" + scatter_id), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":\"" + std::to_string(serve) + "\""),
            std::string::npos);

  // The remote lane is its own Perfetto process with a name...
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("agent-a"), std::string::npos);

  // ...and its timestamps came back to the local clock: 3 ms remote - 2 ms
  // offset = 1000 us, with the later event keeping lane order.
  const std::vector<double> ts = json::find_numbers(json, "ts");
  double corrected = 0, corrected_later = 0;
  for (double t : ts) {
    if (t == 1000.0) corrected = t;
    if (t == 2000.0) corrected_later = t;
  }
  EXPECT_EQ(corrected, 1000.0);
  EXPECT_EQ(corrected_later, 2000.0);
}

// A recorder with no remote lanes must export *exactly* the single-process
// shape older tooling parses — no process metadata, no pid churn.
TEST(ChromeTraceTest, LocalOnlyExportHasNoProcessMetadata) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record(ElementId{"e"}, SimTime::millis(1), TraceEventKind::kDrop, 1);
  const std::string json = to_chrome_trace(rec);
  EXPECT_EQ(json.find("\"process_name\""), std::string::npos);
}

// Concurrent recording is supported *through the recorder* (record() holds
// the lock).  Hammer it from several threads while a reader snapshots — run
// under TSan this is the churn test for the locking contract.
TEST(TraceRecorderTest, ConcurrentRecordIsSafe) {
  TraceRecorder rec(/*ring_capacity=*/64);
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&rec, w] {
      ElementId id{"worker-" + std::to_string(w % 2)};  // contended rings
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(id, SimTime::nanos(w * kPerThread + i),
                   TraceEventKind::kDrop, i);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)rec.events();  // concurrent snapshots must also be safe
    (void)rec.ring_stats();
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(rec.total_events(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.num_rings(), 2u);
}

#ifndef NDEBUG
// Direct TraceRing::push is documented single-writer; debug builds abort on
// a concurrent push instead of tearing a slot.  Two spinning writers make a
// collision effectively certain within the death-test child.
TEST(TraceRingDeathTest, ConcurrentDirectPushAbortsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TraceRing ring("hot", 16);
        auto spin = [&ring] {
          for (int i = 0; i < 50000000; ++i) {
            ring.push(SimTime::nanos(i), TraceEventKind::kDrop, i,
                      "concurrent-push");
          }
        };
        std::thread a(spin);
        std::thread b(spin);
        a.join();
        b.join();
      },
      "");
}
#endif

}  // namespace
}  // namespace perfsight
