// Flight-recorder tests: ring semantics, global install/restore, the
// dataplane hooks (drop + queue watermark), and Chrome-trace export shape.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataplane/queues.h"
#include "perfsight/json_export.h"
#include "perfsight/trace.h"

namespace perfsight {
namespace {

TEST(TraceRingTest, OverwritesOldestAndCountsDrops) {
  TraceRing ring("e0", 4);
  for (int i = 0; i < 6; ++i) {
    ring.push(SimTime::millis(i), TraceEventKind::kDrop,
              static_cast<double>(i), "d");
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_events(), 6u);
  EXPECT_EQ(ring.dropped_events(), 2u);

  // Oldest two (0, 1) were overwritten; snapshot is oldest-first.
  std::vector<TraceEvent> ev = ring.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  for (size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(ev[i].value, static_cast<double>(i + 2));
    EXPECT_EQ(ev[i].element, "e0");
  }
  EXPECT_LE(ev.front().t.ns(), ev.back().t.ns());
}

TEST(TraceRecorderTest, DisabledRecorderIsNoOp) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  rec.record(ElementId{"e"}, SimTime::millis(1), TraceEventKind::kDrop, 1);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.total_events(), 0u);
}

TEST(TraceRecorderTest, InstallRoutesHooksAndRestores) {
  // Default global recorder is disabled: hooks cost one branch, record
  // nothing.
  ASSERT_FALSE(trace_enabled());
  trace_event_now(ElementId{"x"}, TraceEventKind::kDrop, 1, "ignored");
  EXPECT_EQ(TraceRecorder::global().total_events(), 0u);

  {
    ScopedTraceRecorder scoped;
    ASSERT_TRUE(trace_enabled());
    TraceRecorder::global().set_now(SimTime::millis(7));
    trace_event_now(ElementId{"x"}, TraceEventKind::kAlertFired, 3.5, "hi");
    std::vector<TraceEvent> ev = scoped.recorder().events();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].t.ms(), 7);
    EXPECT_EQ(ev[0].kind, TraceEventKind::kAlertFired);
    EXPECT_DOUBLE_EQ(ev[0].value, 3.5);
    EXPECT_EQ(ev[0].detail, "hi");
  }
  // Scope exit restores the (disabled) default.
  EXPECT_FALSE(trace_enabled());
}

TEST(TraceHooksTest, TunOverflowRecordsDropWithRulebookCause) {
  ScopedTraceRecorder scoped;
  dp::Tun tun(ElementId{"m0/tun0"}, /*vm=*/0, QueueCaps{10, UINT64_MAX});
  tun.accept(PacketBatch{FlowId{1}, 30, 30 * 1500});

  std::vector<TraceEvent> drops;
  for (const TraceEvent& e : scoped.recorder().events_for(ElementId{"m0/tun0"})) {
    if (e.kind == TraceEventKind::kDrop) drops.push_back(e);
  }
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_DOUBLE_EQ(drops[0].value, 20.0);  // 30 offered, 10 queued
  // The detail carries the rule book's candidate resources for TUN drops.
  EXPECT_FALSE(drops[0].detail.empty());
  EXPECT_NE(drops[0].detail.find("CPU"), std::string::npos) << drops[0].detail;
}

TEST(TraceHooksTest, QueueWatermarksAreEdgeTriggered) {
  ScopedTraceRecorder scoped;
  dp::Tun tun(ElementId{"tun"}, 0, QueueCaps{100, UINT64_MAX});

  // Fill to 80% in two steps: only the 75% crossing fires.
  tun.accept(PacketBatch{FlowId{1}, 50, 50 * 100});
  tun.accept(PacketBatch{FlowId{1}, 30, 30 * 100});
  // Hover above the high mark: no extra events.
  tun.accept(PacketBatch{FlowId{1}, 5, 5 * 100});
  // Drain below 25%: exactly one low-water event.
  (void)tun.fetch(70, UINT64_MAX);

  std::vector<TraceEvent> ev = scoped.recorder().events_for(ElementId{"tun"});
  std::vector<TraceEvent> marks;
  for (const TraceEvent& e : ev) {
    if (e.kind == TraceEventKind::kQueueHighWater ||
        e.kind == TraceEventKind::kQueueLowWater) {
      marks.push_back(e);
    }
  }
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0].kind, TraceEventKind::kQueueHighWater);
  EXPECT_GE(marks[0].value, 0.75);
  EXPECT_EQ(marks[1].kind, TraceEventKind::kQueueLowWater);
  EXPECT_LE(marks[1].value, 0.25);
}

TEST(TraceRecorderTest, MergedEventsAreTimeOrdered) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record(ElementId{"b"}, SimTime::millis(5), TraceEventKind::kDrop, 1);
  rec.record(ElementId{"a"}, SimTime::millis(1), TraceEventKind::kDrop, 1);
  rec.record(ElementId{"b"}, SimTime::millis(3), TraceEventKind::kDrop, 1);
  std::vector<TraceEvent> ev = rec.events();
  ASSERT_EQ(ev.size(), 3u);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].t.ns(), ev[i].t.ns());
  }
}

// Extracts the numeric value following each occurrence of `key` in `text`.
std::vector<double> extract_numbers(const std::string& text,
                                    const std::string& key) {
  std::vector<double> out;
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    out.push_back(std::stod(text.substr(pos)));
  }
  return out;
}

TEST(ChromeTraceTest, ExportIsWellFormedAndSorted) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record(ElementId{"tun0"}, SimTime::millis(2), TraceEventKind::kDrop, 7,
             "cause: \"CPU\"");  // quote exercises escaping
  rec.record(ElementId{"pool/vm1"}, SimTime::millis(1),
             TraceEventKind::kArbiterShortfall, 0.5, "grant below demand");
  rec.record(ElementId{"tun0"}, SimTime::millis(9),
             TraceEventKind::kQueueHighWater, 0.8);

  std::string json = to_chrome_trace(rec);
  EXPECT_TRUE(json::lint(json).is_ok()) << json::lint(json).message();

  // Required Chrome-trace fields, one per event object (3 events + 2
  // thread_name metadata records).
  EXPECT_EQ(extract_numbers(json, "\"ts\":").size(), 5u);
  size_t ph_count = 0;
  for (size_t p = json.find("\"ph\":"); p != std::string::npos;
       p = json.find("\"ph\":", p + 1)) {
    ++ph_count;
  }
  EXPECT_EQ(ph_count, 5u);
  EXPECT_NE(json.find("\"name\":"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

  // Timestamps non-decreasing across the whole array (metadata first at 0,
  // then instants sorted; microseconds).
  std::vector<double> ts = extract_numbers(json, "\"ts\":");
  for (size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  EXPECT_DOUBLE_EQ(ts.back(), 9000.0);  // 9 ms in us
}

}  // namespace
}  // namespace perfsight
