// Traffic generators: average-rate correctness, burst behaviour against
// bounded queues, and mixed-size distributions feeding the size histogram.
#include "vm/traffic.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight::vm {
namespace {

using namespace literals;

FlowSpec flow(uint32_t id, uint32_t size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.packet_size = size;
  return f;
}

struct Rig {
  sim::Simulator sim{Duration::millis(1)};
  PhysicalMachine m{"m0", dp::StackParams{}, &sim};
  int vm0;
  Rig() {
    vm0 = m.add_vm({"vm0", 1.0});
    m.set_sink_app(vm0);
  }
  uint64_t received() { return m.app(vm0)->stats().bytes_in.value(); }
};

TEST(OnOffSourceTest, DutyCycleSetsAverage) {
  Rig rig;
  FlowSpec f = flow(1);
  rig.m.route_flow_to_vm(f, rig.vm0);
  // 1 Gbps on for 100 ms, off for 100 ms -> 500 Mbps average.
  OnOffIngressSource src("onoff", f, 1_gbps, Duration::millis(100),
                         Duration::millis(100), rig.m.pnic());
  rig.sim.add(&src);
  rig.sim.run_for(4_s);
  EXPECT_NEAR(static_cast<double>(rig.received()), 250e6, 0.05 * 250e6);
}

TEST(OnOffSourceTest, SilentDuringOffPhase) {
  Rig rig;
  FlowSpec f = flow(1);
  rig.m.route_flow_to_vm(f, rig.vm0);
  OnOffIngressSource src("onoff", f, 1_gbps, Duration::millis(50),
                         Duration::millis(200), rig.m.pnic());
  rig.sim.add(&src);
  rig.sim.run_for(Duration::millis(60));  // now inside the off phase
  uint64_t at_off = rig.received();
  rig.sim.run_for(Duration::millis(100));
  // Aside from pipeline drain (a few packets), nothing new arrives.
  EXPECT_LT(rig.received() - at_off, 30000u);
  EXPECT_FALSE(src.on());
}

TEST(BurstySourceTest, PreservesAverageRate) {
  Rig rig;
  FlowSpec f = flow(1);
  rig.m.route_flow_to_vm(f, rig.vm0);
  BurstyIngressSource src("bursty", f, 500_mbps, /*burstiness=*/8.0,
                          rig.m.pnic(), /*seed=*/42);
  rig.sim.add(&src);
  rig.sim.run_for(4_s);
  double mean_pkts = 4.0 * (500e6 / 8) / 1500;
  EXPECT_NEAR(static_cast<double>(src.emitted_packets()), mean_pkts,
              0.1 * mean_pkts);
}

TEST(BurstySourceTest, BurstsStressBoundedQueuesMoreThanFluid) {
  // Same average load; the bursty variant overflows a short queue that the
  // fluid one never fills.
  dp::StackParams params;
  params.tun_queue_pkts = 128;
  params.tun_queue_bytes = 128 * 1500;

  sim::Simulator sim_a(Duration::millis(1));
  PhysicalMachine fluid_m("m0", params, &sim_a);
  int va = fluid_m.add_vm({"vm0", 1.0});
  fluid_m.set_sink_app(va);
  FlowSpec f = flow(1);
  fluid_m.route_flow_to_vm(f, va);
  fluid_m.add_ingress_source("fluid", f, 600_mbps);
  sim_a.run_for(2_s);

  sim::Simulator sim_b(Duration::millis(1));
  PhysicalMachine bursty_m("m0", params, &sim_b);
  int vb = bursty_m.add_vm({"vm0", 1.0});
  bursty_m.set_sink_app(vb);
  bursty_m.route_flow_to_vm(f, vb);
  BurstyIngressSource src("bursty", f, 600_mbps, 16.0, bursty_m.pnic(), 7);
  sim_b.add(&src);
  sim_b.run_for(2_s);

  uint64_t fluid_drops = fluid_m.tun(va)->stats().drop_pkts.value() +
                         fluid_m.pnic()->stats().drop_pkts.value();
  uint64_t bursty_drops = bursty_m.tun(vb)->stats().drop_pkts.value() +
                          bursty_m.pnic()->stats().drop_pkts.value();
  EXPECT_EQ(fluid_drops, 0u);
  EXPECT_GT(bursty_drops, 100u);
}

TEST(MixedSizeSourceTest, SplitsBytesByWeight) {
  Rig rig;
  FlowSpec small = flow(1, 64);
  FlowSpec big = flow(2, 1500);
  rig.m.route_flow_to_vm(small, rig.vm0);
  rig.m.route_flow_to_vm(big, rig.vm0);
  MixedSizeIngressSource src(
      "imix", {{small, 0.3}, {big, 0.7}}, 400_mbps, rig.m.pnic());
  rig.sim.add(&src);
  rig.m.tun(rig.vm0)->enable_size_tracking();
  rig.sim.run_for(2_s);

  // 400 Mbps * 2 s = 100 MB total; 30 MB in 64 B packets, 70 MB in 1500 B.
  const PacketSizeHistogram* hist = rig.m.tun(rig.vm0)->size_histogram();
  ASSERT_NE(hist, nullptr);
  double small_pkts = static_cast<double>(
      hist->count(PacketSizeHistogram::bucket_for(64)));
  double big_pkts = static_cast<double>(
      hist->count(PacketSizeHistogram::bucket_for(1500)));
  EXPECT_NEAR(small_pkts * 64, 30e6, 0.1 * 30e6);
  EXPECT_NEAR(big_pkts * 1500, 70e6, 0.1 * 70e6);
}

TEST(MixedSizeSourceTest, HistogramQuantileReflectsMix) {
  Rig rig;
  FlowSpec small = flow(1, 64);
  FlowSpec big = flow(2, 1500);
  rig.m.route_flow_to_vm(small, rig.vm0);
  rig.m.route_flow_to_vm(big, rig.vm0);
  MixedSizeIngressSource src(
      "imix", {{small, 0.5}, {big, 0.5}}, 200_mbps, rig.m.pnic());
  rig.sim.add(&src);
  rig.m.tun(rig.vm0)->enable_size_tracking();
  rig.sim.run_for(1_s);
  // By packet count the 64 B class dominates (~96%), so even p90 is small.
  EXPECT_EQ(rig.m.tun(rig.vm0)->size_histogram()->approx_quantile(0.9), 64u);
}

}  // namespace
}  // namespace perfsight::vm
