// Socket transport + remote-agent stub: the differential contract is that a
// controller talking to socket-backed agents produces byte-identical output
// to the same controller talking to in-process agents — on clean streams.
// On damaged streams (torn connection, corrupt frame, dropped reply) the
// lost frames must degrade to kMissing blind spots via wire::reconcile, with
// the same "unavailable after N attempt(s)" text a local channel failure
// produces, while ids no agent serves keep their not_found text.
#include "perfsight/transport.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/deployment.h"
#include "common/threadpool.h"
#include "perfsight/json_export.h"
#include "perfsight/agent.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/monitor.h"
#include "perfsight/remote_agent.h"
#include "perfsight/rootcause.h"
#include "perfsight/trace.h"
#include "perfsight/wire.h"
#include "sim/simulator.h"

namespace perfsight {
namespace {

using transport::WallDuration;

std::string unique_unix_path() {
  static std::atomic<int> counter{0};
  return "/tmp/ps-transport-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A scriptable element whose counters the rig moves as time advances.  For
// remote rigs collect() runs on the server thread while the main thread
// advances the clock — the socket between them is not a happens-before edge,
// so the counters live behind a lock.
class ScriptedSource : public StatsSource {
 public:
  ScriptedSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    std::lock_guard<std::mutex> lock(mu_);
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs_;
    return r;
  }

  void set_attrs(std::vector<Attr> a) {
    std::lock_guard<std::mutex> lock(mu_);
    attrs_ = std::move(a);
  }
  template <typename Fn>
  void mutate(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    fn(attrs_);
  }

 private:
  ElementId id_;
  ChannelKind kind_;
  mutable std::mutex mu_;
  std::vector<Attr> attrs_;
};

// The scatter-rig topology of controller_scatter_test, parameterized over
// how the controller reaches each agent: in-process pointer, RemoteAgent
// over loopback tcp, or RemoteAgent over a unix-domain socket.
class TransportRig {
 public:
  enum class Mode { kInProcess, kTcp, kUnix };

  TransportRig(size_t agents, size_t per_agent, Mode mode)
      : controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }) {
    const ChannelKind kinds[] = {ChannelKind::kProcFs, ChannelKind::kMbSocket,
                                 ChannelKind::kNetDeviceFile,
                                 ChannelKind::kOvsChannel};
    for (size_t a = 0; a < agents; ++a) {
      agents_.push_back(
          std::make_unique<Agent>("agent-" + std::to_string(a), a + 1));
      Agent* agent = agents_.back().get();

      // Populate the machine first: the server's hello snapshot must carry
      // the complete element set before any adapter dials in.
      std::vector<ScriptedSource*> elems;
      for (size_t e = 0; e < per_agent; ++e) {
        const size_t i = a * per_agent + e;
        auto s = std::make_unique<ScriptedSource>(
            "a" + std::to_string(a) + "/el" + std::to_string(e), kinds[i % 4]);
        s->set_attrs({{attr::kRxPkts, static_cast<double>(1000 * i)},
                      {attr::kTxPkts, static_cast<double>(900 * i)},
                      {attr::kDropPkts, static_cast<double>(10 * i)},
                      {attr::kTxBytes, static_cast<double>(150000 * (i + 1))},
                      {attr::kType, static_cast<double>(
                                        static_cast<int>(ElementKind::kTun))},
                      {attr::kVm, static_cast<double>(i % 3)}});
        EXPECT_TRUE(agent->add_element(s.get()).is_ok());
        elems.push_back(s.get());
        sources_.push_back(std::move(s));
      }
      auto mb = std::make_unique<ScriptedSource>("mb" + std::to_string(a),
                                                 ChannelKind::kMbSocket);
      mb->set_attrs({{attr::kInBytes, 0},
                     {attr::kInTimeNs, 0},
                     {attr::kOutBytes, 0},
                     {attr::kOutTimeNs, 0},
                     {attr::kCapacityMbps, 1000}});
      EXPECT_TRUE(agent->add_element(mb.get()).is_ok());
      mbs_.push_back(mb.get());
      sources_.push_back(std::move(mb));

      AgentClient* client = agent;
      if (mode != Mode::kInProcess) {
        transport::Endpoint ep =
            mode == Mode::kTcp
                ? transport::Endpoint::tcp("127.0.0.1", 0)
                : transport::Endpoint::unix_path(unique_unix_path());
        servers_.push_back(std::make_unique<RemoteAgentServer>(agent, ep));
        EXPECT_TRUE(servers_.back()->start().is_ok());
        remotes_.push_back(
            std::make_unique<RemoteAgent>(servers_.back()->endpoint()));
        EXPECT_TRUE(remotes_.back()->connect().is_ok());
        client = remotes_.back().get();
      }
      clients_.push_back(client);

      controller_.register_agent(client);
      for (ScriptedSource* s : elems) {
        EXPECT_TRUE(
            controller_.register_element(tenant_, s->id(), client).is_ok());
        controller_.register_stack_element(client, s->id());
        elements_.push_back(s->id());
      }
      EXPECT_TRUE(
          controller_.register_element(tenant_, mbs_.back()->id(), client)
              .is_ok());
      controller_.register_middlebox(tenant_, mbs_.back()->id());
      if (a > 0) {
        controller_.add_chain_edge(tenant_, mbs_[mbs_.size() - 2]->id(),
                                   mbs_.back()->id());
      }
    }
  }

  SimTime advance(Duration d) {
    now_ = now_ + d;
    const double dt_sec = d.sec();
    size_t i = 0;
    for (auto& s : sources_) {
      s->mutate([&](std::vector<Attr>& attrs) {
        for (Attr& a : attrs) {
          if (a.name == attr::kRxPkts) a.value += (1000 + i) * dt_sec;
          if (a.name == attr::kTxPkts) a.value += (900 + i) * dt_sec;
          if (a.name == attr::kDropPkts) a.value += (3 + i % 5) * dt_sec;
          if (a.name == attr::kTxBytes) a.value += 150000 * dt_sec;
        }
      });
      ++i;
    }
    for (size_t m = 0; m < mbs_.size(); ++m) {
      const double mbps = 1000.0 / (m + 1);
      mbs_[m]->mutate([&](std::vector<Attr>& attrs) {
        for (Attr& a : attrs) {
          if (a.name == attr::kInBytes || a.name == attr::kOutBytes) {
            a.value += mbps * 1e6 / 8 * dt_sec;
          }
          if (a.name == attr::kInTimeNs || a.name == attr::kOutTimeNs) {
            a.value += static_cast<double>(d.ns());
          }
        }
      });
    }
    return now_;
  }

  void install_faults(const FaultPlan* plan, const RetryPolicy& retry) {
    for (auto& a : agents_) {
      a->set_fault_plan(plan);
      a->set_retry_policy(retry);
    }
  }

  Agent* agent(size_t i) { return agents_[i].get(); }
  RemoteAgentServer* server(size_t i) { return servers_[i].get(); }
  RemoteAgent* remote(size_t i) { return remotes_[i].get(); }
  // This agent's packet-path element ids, creation order.
  std::vector<ElementId> elements_of_agent(size_t a, size_t per_agent) const {
    return {elements_.begin() + a * per_agent,
            elements_.begin() + (a + 1) * per_agent};
  }

  SimTime now_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<std::unique_ptr<ScriptedSource>> sources_;
  std::vector<std::unique_ptr<RemoteAgentServer>> servers_;
  std::vector<std::unique_ptr<RemoteAgent>> remotes_;
  std::vector<AgentClient*> clients_;
  std::vector<ScriptedSource*> mbs_;
  std::vector<ElementId> elements_;  // packet-path elements, creation order
  Controller controller_;
  const TenantId tenant_{1};
};

std::string fmt(const Result<Controller::QualifiedRecord>& r) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  return "OK " + to_wire(r.value().record) + " q=" +
         to_string(r.value().quality) + "\n";
}

template <typename T>
std::string fmt_val(const Result<T>& r, DataQuality q) {
  if (!r.ok()) {
    return "ERR(" + std::to_string(static_cast<int>(r.status().code())) +
           ") " + r.status().message() + "\n";
  }
  std::string v;
  if constexpr (std::is_same_v<T, DataRate>) {
    v = std::to_string(r.value().bits_per_sec());
  } else {
    v = std::to_string(r.value());
  }
  return "OK " + v + " q=" + to_string(q) + "\n";
}

// The full diagnosis workload of controller_scatter_test, folded into one
// string: its in-process run is the oracle every socket-backed run must
// reproduce byte-for-byte.
std::string run_script(TransportRig& rig, ThreadPool* pool, bool batching) {
  Controller& c = rig.controller_;
  c.set_pool(pool);
  c.set_batching(batching);
  c.set_wire_loopback(false);

  std::string out;

  std::vector<ElementId> ids = c.elements_of(rig.tenant_);
  ids.push_back(ElementId{"ghost"});
  for (const auto& r : c.get_attr_many(
           rig.tenant_, ids,
           {attr::kRxPkts, attr::kTxPkts, attr::kDropPkts, attr::kType,
            attr::kVm})) {
    out += fmt(r);
  }

  out += fmt(c.get_attr_q(rig.tenant_, rig.elements_.front(),
                          {attr::kRxPkts, attr::kTxPkts}));

  const std::vector<ElementId>& els = rig.elements_;
  std::vector<DataQuality> q;
  std::vector<Result<DataRate>> thr =
      c.get_throughput_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < thr.size(); ++i) out += fmt_val(thr[i], q[i]);
  std::vector<Result<int64_t>> loss =
      c.get_pkt_loss_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < loss.size(); ++i) out += fmt_val(loss[i], q[i]);
  std::vector<Result<double>> aps =
      c.get_avg_pkt_size_many(rig.tenant_, els, Duration::millis(100), &q);
  for (size_t i = 0; i < aps.size(); ++i) out += fmt_val(aps[i], q[i]);

  ContentionDetector det(&c, RuleBook::standard());
  det.set_pool(pool);
  out += to_text(det.diagnose(rig.tenant_, Duration::millis(100)));

  RootCauseAnalyzer rca(&c);
  out += to_text(rca.analyze(rig.tenant_, Duration::millis(100)));

  Monitor mon(&c, rig.tenant_);
  mon.watch(rig.elements_.front(), attr::kDropPkts);
  mon.watch(rig.mbs_.front()->id(), attr::kInBytes);
  AlertWatcher watcher(&mon, &det, &rca);
  watcher.set_pool(pool);
  watcher.add_rule({"drops-any", rig.elements_.front(), attr::kDropPkts,
                    /*on_rate=*/false, /*threshold=*/1.0,
                    AlertRule::Action::kContention, Duration::millis(50),
                    Duration::seconds(1)});
  watcher.add_rule({"mb-busy", rig.mbs_.front()->id(), attr::kInBytes,
                    /*on_rate=*/false, /*threshold=*/1.0,
                    AlertRule::Action::kRootCause, Duration::millis(50),
                    Duration::seconds(1)});
  mon.sample();
  for (const Alert& a : watcher.check()) out += to_text(a);

  return out;
}

// --- endpoint + socket primitives --------------------------------------------

TEST(EndpointTest, ParseAcceptsAndRejects) {
  Result<transport::Endpoint> ep =
      transport::Endpoint::parse("tcp:127.0.0.1:7070");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep.value().kind, transport::Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.value().host, "127.0.0.1");
  EXPECT_EQ(ep.value().port, 7070);
  EXPECT_EQ(ep.value().to_string(), "tcp:127.0.0.1:7070");

  Result<transport::Endpoint> u = transport::Endpoint::parse("unix:/tmp/x.s");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().kind, transport::Endpoint::Kind::kUnix);
  EXPECT_EQ(u.value().path, "/tmp/x.s");
  EXPECT_EQ(u.value().to_string(), "unix:/tmp/x.s");

  for (const char* bad :
       {"", "tcp:", "tcp:127.0.0.1", "tcp::7070", "tcp:127.0.0.1:",
        "tcp:127.0.0.1:notaport", "tcp:127.0.0.1:99999", "tcp:127.0.0.1:80x",
        "udp:1.2.3.4:1", "unix:"}) {
    EXPECT_FALSE(transport::Endpoint::parse(bad).ok()) << "'" << bad << "'";
  }
}

TEST(SocketTest, DeadlinesHoldAndPartialBytesSurvive) {
  Result<transport::Listener> l =
      transport::Listener::listen(transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(l.ok());
  transport::Listener listener = std::move(l).take();
  EXPECT_NE(listener.bound_endpoint().port, 0);  // ephemeral port resolved

  Result<transport::Socket> c =
      transport::connect(listener.bound_endpoint(), WallDuration(1000));
  ASSERT_TRUE(c.ok());
  transport::Socket client = std::move(c).take();
  Result<transport::Socket> a = listener.accept(WallDuration(1000));
  ASSERT_TRUE(a.ok());
  transport::Socket server = std::move(a).take();

  // No data: the read must come back in bounded time, empty-handed.
  std::string buf;
  Status st = client.recv_exact(4, &buf, WallDuration(50));
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(buf.empty());

  // Peer dies mid-message: the bytes that made it are the caller's to keep.
  ASSERT_TRUE(server.send_all("abc").is_ok());
  server.close();
  st = client.recv_exact(10, &buf, WallDuration(1000));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(buf, "abc");
}

// --- the differential contract -----------------------------------------------

TEST(TransportDifferentialTest, SocketAgentsMatchInProcessOracle) {
  TransportRig oracle_rig(3, 3, TransportRig::Mode::kInProcess);
  const std::string oracle =
      run_script(oracle_rig, nullptr, /*batching=*/false);
  ASSERT_NE(oracle.find("=== Algorithm 1"), std::string::npos);
  ASSERT_NE(oracle.find("=== Algorithm 2"), std::string::npos);
  ASSERT_NE(oracle.find("ALERT ["), std::string::npos);
  ASSERT_NE(oracle.find("ERR(1) no agent serves element ghost"),
            std::string::npos);

  // Batched over tcp, inline gather.
  {
    TransportRig rig(3, 3, TransportRig::Mode::kTcp);
    EXPECT_EQ(run_script(rig, nullptr, true), oracle);
  }
  // Batched over tcp, scatter across a pool.
  {
    TransportRig rig(3, 3, TransportRig::Mode::kTcp);
    ThreadPool pool(4);
    EXPECT_EQ(run_script(rig, &pool, true), oracle);
  }
  // Single-request path over tcp (kSingleRequest / kError framing).
  {
    TransportRig rig(3, 3, TransportRig::Mode::kTcp);
    EXPECT_EQ(run_script(rig, nullptr, false), oracle);
  }
  // Batched over unix-domain sockets.
  {
    TransportRig rig(3, 3, TransportRig::Mode::kUnix);
    EXPECT_EQ(run_script(rig, nullptr, true), oracle);
  }
}

TEST(TransportDifferentialTest, AgentFaultPlanCrossesTheWireIntact) {
  // Faults at the *agent* (the modelled channels) still produce clean
  // streams: degraded qualities, fail codes and attempt counts are payload,
  // and must cross byte-identically.
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.attempt_timeout = Duration::millis(1);

  auto make_plan = [] {
    FaultPlan plan(99);
    ChannelFaultSpec spec;
    spec.transient_p = 0.10;
    spec.timeout_p = 0.05;
    spec.stale_p = 0.10;
    spec.torn_p = 0.10;
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      plan.set_channel_faults(static_cast<ChannelKind>(k), spec);
    }
    plan.set_timeout_spike(Duration::millis(5));
    plan.schedule_crash("agent-1", SimTime::millis(150));
    return plan;
  };

  TransportRig oracle_rig(3, 3, TransportRig::Mode::kInProcess);
  FaultPlan oracle_plan = make_plan();
  oracle_rig.install_faults(&oracle_plan, retry);
  const std::string oracle = run_script(oracle_rig, nullptr, false);
  ASSERT_TRUE(oracle.find("q=stale") != std::string::npos ||
              oracle.find("q=torn") != std::string::npos ||
              oracle.find("ERR(3)") != std::string::npos ||
              oracle.find("ERR(5)") != std::string::npos)
      << "fault plan produced no degradation; differential is vacuous";

  {
    TransportRig rig(3, 3, TransportRig::Mode::kTcp);
    FaultPlan plan = make_plan();
    rig.install_faults(&plan, retry);
    ThreadPool pool(2);
    EXPECT_EQ(run_script(rig, &pool, true), oracle);
  }
  {
    TransportRig rig(3, 3, TransportRig::Mode::kTcp);
    FaultPlan plan = make_plan();
    rig.install_faults(&plan, retry);
    EXPECT_EQ(run_script(rig, nullptr, false), oracle);
  }
}

// --- damaged streams ---------------------------------------------------------

TEST(TransportDamageTest, TornBatchBecomesBlindSpots) {
  ScopedTraceRecorder scoped;
  TransportRig rig(2, 3, TransportRig::Mode::kTcp);
  rig.controller_.set_batching(true);
  std::vector<ElementId> a0 = rig.elements_of_agent(0, 3);

  // Learn the first frame's wire size from a clean round trip, then tear
  // the next batch right after that frame: el0 survives, el1/el2 are lost.
  BatchResponse clean = rig.remote(0)->query_batch(a0, rig.now_);
  ASSERT_EQ(clean.responses.size(), 3u);
  const std::string f0 = wire::encode_frame(clean.responses[0]).value();
  rig.server(0)->inject_truncate_next_batch(wire::kBatchHeaderSize +
                                            f0.size());

  auto got = rig.controller_.get_attr_many(
      rig.tenant_, rig.elements_, {attr::kRxPkts, attr::kDropPkts});
  ASSERT_EQ(got.size(), 6u);
  EXPECT_TRUE(got[0].ok()) << got[0].status().message();  // a0/el0 survived
  for (size_t i : {1u, 2u}) {
    ASSERT_FALSE(got[i].ok()) << "a0/el" << i << " should be a blind spot";
    EXPECT_EQ(got[i].status().code(), StatusCode::kUnavailable);
    EXPECT_NE(got[i].status().message().find("unavailable after 1 attempt(s)"),
              std::string::npos)
        << got[i].status().message();
  }
  for (size_t i : {3u, 4u, 5u}) {
    EXPECT_TRUE(got[i].ok())
        << "agent-1 must be untouched: " << got[i].status().message();
  }
  EXPECT_EQ(rig.remote(0)->transport_stats().damaged, 1u);

  // Partial data feeds Algorithm 1's blind-spot accounting: coverage drops
  // below 100% and the report says which elements went unmeasured.
  rig.server(0)->inject_truncate_next_batch(wire::kBatchHeaderSize);
  ContentionDetector det(&rig.controller_, RuleBook::standard());
  std::string report =
      to_text(det.diagnose(rig.tenant_, Duration::millis(100)));
  EXPECT_NE(report.find("coverage"), std::string::npos) << report;

  // The torn connection heals on the next query.
  auto healed = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                              {attr::kRxPkts});
  for (const auto& r : healed) EXPECT_TRUE(r.ok()) << r.status().message();
  EXPECT_GE(rig.remote(0)->transport_stats().reconnects, 1u);

  // Lifecycle left a trail: connects at rig construction, damage events for
  // the torn batches.
  size_t connects = 0, damaged = 0;
  for (const TraceEvent& e :
       scoped.recorder().events_for(ElementId{"transport"})) {
    if (e.kind == TraceEventKind::kTransportConnect) ++connects;
    if (e.kind == TraceEventKind::kTransportDamaged) ++damaged;
  }
  EXPECT_EQ(connects, 2u);  // one per rig agent
  EXPECT_GE(damaged, 2u);
  EXPECT_STREQ(to_string(TraceEventKind::kTransportConnect),
               "transport_connect");
  EXPECT_STREQ(to_string(TraceEventKind::kTransportReconnect),
               "transport_reconnect");
  EXPECT_STREQ(to_string(TraceEventKind::kTransportDamaged),
               "transport_damaged");
}

TEST(TransportDamageTest, CorruptFrameReconcilesAndRecovers) {
  TransportRig rig(2, 3, TransportRig::Mode::kTcp);
  rig.controller_.set_batching(true);

  // Flip a byte inside the first frame's payload: the checksum fails, the
  // length chain past the frame is untrustworthy, and every element of
  // agent-0's batch degrades to a kMissing blind spot.
  rig.server(0)->inject_corrupt_next_batch(wire::kBatchHeaderSize +
                                           wire::kFramePrefixSize + 2);
  auto got = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                           {attr::kRxPkts});
  ASSERT_EQ(got.size(), 6u);
  for (size_t i : {0u, 1u, 2u}) {
    ASSERT_FALSE(got[i].ok());
    EXPECT_EQ(got[i].status().code(), StatusCode::kUnavailable);
    EXPECT_NE(got[i].status().message().find("unavailable after 1 attempt(s)"),
              std::string::npos);
  }
  for (size_t i : {3u, 4u, 5u}) EXPECT_TRUE(got[i].ok());
  EXPECT_EQ(rig.remote(0)->transport_stats().damaged, 1u);

  auto healed = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                              {attr::kRxPkts});
  for (const auto& r : healed) EXPECT_TRUE(r.ok()) << r.status().message();
}

TEST(TransportDamageTest, DroppedReplyResendsOnceInvisibly) {
  TransportRig rig(1, 3, TransportRig::Mode::kTcp);
  rig.controller_.set_batching(true);

  // The server closes without replying: zero reply bytes arrived, so the
  // idempotent read earns exactly one reconnect + resend and the caller
  // never notices.
  rig.server(0)->inject_drop_next_reply();
  auto got = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                           {attr::kRxPkts});
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().quality, DataQuality::kFresh);
  }
  RemoteAgent::TransportStats stats = rig.remote(0)->transport_stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.damaged, 0u);
}

// --- reconnect + breaker -----------------------------------------------------

TEST(TransportReconnectTest, ServerRestartHeals) {
  TransportRig rig(1, 2, TransportRig::Mode::kTcp);
  rig.controller_.set_batching(true);
  RetryPolicy rp;
  rp.max_attempts = 2;
  rp.initial_backoff = Duration::millis(1);
  rp.max_backoff = Duration::millis(2);
  rig.remote(0)->set_retry_policy(rp);
  rig.remote(0)->set_deadline(WallDuration(500));

  const transport::Endpoint ep = rig.server(0)->endpoint();
  rig.server(0)->stop();

  // Agent down: every element is a blind spot, not an exception.
  auto dark = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                            {attr::kRxPkts});
  ASSERT_EQ(dark.size(), 2u);
  for (const auto& r : dark) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }

  // A new server process on the same endpoint: the adapter reconnects on
  // the next query and data flows again.
  RemoteAgentServer revived(rig.agent(0), ep);
  ASSERT_TRUE(revived.start().is_ok());
  auto healed = rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                              {attr::kRxPkts});
  for (const auto& r : healed) EXPECT_TRUE(r.ok()) << r.status().message();
  EXPECT_GE(rig.remote(0)->transport_stats().reconnects, 1u);
}

TEST(TransportBreakerTest, BreakerFastFailsThenHalfOpenProbeRecovers) {
  TransportRig rig(1, 2, TransportRig::Mode::kTcp);
  CircuitBreakerConfig cb;
  cb.failure_threshold = 2;
  cb.cooldown = Duration::millis(100);
  rig.remote(0)->set_breaker_config(cb);
  RetryPolicy rp;
  rp.max_attempts = 1;
  rig.remote(0)->set_retry_policy(rp);
  rig.remote(0)->set_deadline(WallDuration(500));

  const transport::Endpoint ep = rig.server(0)->endpoint();
  rig.server(0)->stop();
  std::vector<ElementId> ids = rig.elements_;

  // Two consecutive connect failures open the breaker...
  (void)rig.remote(0)->query_batch(ids, rig.now_);
  (void)rig.remote(0)->query_batch(ids, rig.now_);
  EXPECT_EQ(rig.remote(0)->breaker_state(), BreakerState::kOpen);

  // ...after which queries fast-fail without paying a dial timeout.
  BatchResponse fast = rig.remote(0)->query_batch(ids, rig.now_);
  ASSERT_EQ(fast.responses.size(), ids.size());
  for (const QueryResponse& r : fast.responses) {
    EXPECT_EQ(r.quality, DataQuality::kMissing);
    EXPECT_EQ(r.fail_code, StatusCode::kUnavailable);
  }
  EXPECT_GE(rig.remote(0)->transport_stats().fast_fails, 1u);

  // Cooldown over + server back: the half-open probe reconnects and closes
  // the breaker.
  RemoteAgentServer revived(rig.agent(0), ep);
  ASSERT_TRUE(revived.start().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  BatchResponse back = rig.remote(0)->query_batch(ids, rig.now_);
  ASSERT_EQ(back.responses.size(), ids.size());
  for (const QueryResponse& r : back.responses) {
    EXPECT_EQ(r.quality, DataQuality::kFresh);
  }
  EXPECT_EQ(rig.remote(0)->breaker_state(), BreakerState::kClosed);
}

// --- observability + deployment ----------------------------------------------

TEST(TransportObservabilityTest, CountersCoverTheTransportLifecycle) {
  TransportRig rig(1, 2, TransportRig::Mode::kTcp);
  rig.controller_.set_batching(true);
  MetricsRegistry reg;
  rig.remote(0)->set_metrics(&reg);

  (void)rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                      {attr::kRxPkts});
  rig.server(0)->inject_corrupt_next_batch(wire::kBatchHeaderSize +
                                           wire::kFramePrefixSize + 2);
  (void)rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                      {attr::kRxPkts});
  (void)rig.controller_.get_attr_many(rig.tenant_, rig.elements_,
                                      {attr::kRxPkts});  // reconnects

  std::string exposed = reg.expose(rig.now_);
  EXPECT_NE(exposed.find("perfsight_transport_connects_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("perfsight_transport_reconnects_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("perfsight_transport_batches_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("perfsight_transport_damaged_batches_total"),
            std::string::npos);
  EXPECT_NE(exposed.find("agent=\"agent-0\""), std::string::npos);
}

TEST(DeploymentRemoteTest, AddRemoteAgentWiresIntoTheControlPlane) {
  // A standalone machine: one agent + server, off in its own "process".
  Agent agent("agent-r", 7);
  ScriptedSource src("r/el0", ChannelKind::kProcFs);
  src.set_attrs({{attr::kRxPkts, 1234.0}});
  ASSERT_TRUE(agent.add_element(&src).is_ok());
  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());

  sim::Simulator sim(Duration::millis(1));
  cluster::Deployment dep(&sim);
  EXPECT_FALSE(dep.add_remote_agent("tcp:127.0.0.1:notaport").ok());
  Result<RemoteAgent*> r = dep.add_remote_agent(server.endpoint().to_string());
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_TRUE(dep.assign_remote(TenantId{1}, src.id(), r.value()).is_ok());

  auto got =
      dep.controller()->get_attr_q(TenantId{1}, src.id(), {attr::kRxPkts});
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_EQ(got.value().record.attrs.size(), 1u);
  EXPECT_EQ(got.value().record.attrs[0].value, 1234.0);
}

// Remote agents must feed the same element-stat exposition as in-process
// ones: add_agent_client() scrapes over the socket, and the stat lines the
// registry renders must be the ones an in-process registration would have
// produced for the identical machine.
TEST(TransportObservabilityTest, RemoteAgentMetricsMatchInProcessExposition) {
  TransportRig local(1, 2, TransportRig::Mode::kInProcess);
  TransportRig remote(1, 2, TransportRig::Mode::kTcp);

  MetricsRegistry lreg, rreg;
  lreg.add_agent(local.agent(0));
  rreg.add_agent_client(remote.remote(0));
  ASSERT_EQ(rreg.num_agent_clients(), 1u);

  auto stat_lines = [](const std::string& exposed) {
    std::vector<std::string> lines;
    size_t at = 0;
    while ((at = exposed.find("perfsight_element_stat{", at)) !=
           std::string::npos) {
      size_t end = exposed.find('\n', at);
      lines.push_back(exposed.substr(at, end - at));
      at = end;
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  const std::vector<std::string> want = stat_lines(lreg.expose(local.now_));
  const std::vector<std::string> got = stat_lines(rreg.expose(remote.now_));
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(got, want);
}

// --- fleet tracing -----------------------------------------------------------

// The tentpole end-to-end: a traced scatter over two socket-backed agents
// whose span clocks are skewed by seconds in opposite directions.  Every
// harvested serve span must (a) parent to the controller's scatter span id
// that travelled on the request envelope, and (b) come back to the local
// clock once the hello-estimated offset is subtracted.
TEST(FleetTracingTest, RemoteSpansResolveToScatterAcrossSkewedClocks) {
  Agent agent_a("agent-a", 1);
  Agent agent_b("agent-b", 2);
  ScriptedSource a0("a/el0", ChannelKind::kProcFs);
  ScriptedSource a1("a/el1", ChannelKind::kOvsChannel);
  ScriptedSource b0("b/el0", ChannelKind::kMbSocket);
  for (ScriptedSource* s : {&a0, &a1, &b0}) {
    s->set_attrs({{attr::kRxPkts, 42.0}});
  }
  ASSERT_TRUE(agent_a.add_element(&a0).is_ok());
  ASSERT_TRUE(agent_a.add_element(&a1).is_ok());
  ASSERT_TRUE(agent_b.add_element(&b0).is_ok());

  RemoteAgentServer sa(&agent_a, transport::Endpoint::tcp("127.0.0.1", 0));
  RemoteAgentServer sb(&agent_b, transport::Endpoint::tcp("127.0.0.1", 0));
  sa.set_clock_skew_ns(2'000'000'000);   // this machine runs 2 s ahead
  sb.set_clock_skew_ns(-3'000'000'000);  // this one 3 s behind
  ASSERT_TRUE(sa.start().is_ok());
  ASSERT_TRUE(sb.start().is_ok());

  ScopedTraceRecorder scoped;  // fleet tracing on for the whole test

  RemoteAgent ra(sa.endpoint());
  RemoteAgent rb(sb.endpoint());
  const int64_t wall0 = transport::span_clock_ns();
  ASSERT_TRUE(ra.connect().is_ok());
  ASSERT_TRUE(rb.connect().is_ok());
  // The hello handshake must have absorbed (nearly all of) the skew.
  EXPECT_NEAR(static_cast<double>(ra.clock_offset_ns()), 2e9, 2e8);
  EXPECT_NEAR(static_cast<double>(rb.clock_offset_ns()), -3e9, 2e8);

  SimTime now;
  Controller controller(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  controller.set_batching(true);
  controller.set_wire_loopback(false);
  ThreadPool pool(2);
  controller.set_pool(&pool);
  const TenantId tenant{1};
  controller.register_agent(&ra);
  controller.register_agent(&rb);
  ASSERT_TRUE(controller.register_element(tenant, a0.id(), &ra).is_ok());
  ASSERT_TRUE(controller.register_element(tenant, a1.id(), &ra).is_ok());
  ASSERT_TRUE(controller.register_element(tenant, b0.id(), &rb).is_ok());

  auto got = controller.get_attr_many(tenant, {a0.id(), a1.id(), b0.id()},
                                      {attr::kRxPkts});
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) ASSERT_TRUE(r.ok()) << r.status().message();

  // The reply piggyback already shipped the serve spans; an explicit harvest
  // must find the rings drained (exactly-once) or pick up any leftovers.
  ASSERT_TRUE(ra.harvest_trace().is_ok());
  ASSERT_TRUE(rb.harvest_trace().is_ok());
  const int64_t wall1 = transport::span_clock_ns();

  TraceRecorder& rec = scoped.recorder();
  uint64_t scatter = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == TraceEventKind::kSpanScatter) scatter = e.span_id;
  }
  ASSERT_NE(scatter, 0u);

  const std::vector<TraceRecorder::RemoteLane> lanes = rec.remote_lanes();
  ASSERT_EQ(lanes.size(), 2u);
  size_t serve_spans = 0;
  for (const TraceRecorder::RemoteLane& lane : lanes) {
    for (size_t i = 0; i < lane.events.size(); ++i) {
      const TraceEvent& e = lane.events[i];
      if (i > 0) {
        EXPECT_GE(e.t.ns(), lane.events[i - 1].t.ns());  // monotone per lane
      }
      if (e.kind != TraceEventKind::kSpanServerBatch) continue;
      ++serve_spans;
      EXPECT_EQ(e.parent_span, scatter)
          << lane.process << " serve span lost its scatter parent";
      // Offset-corrected, the serve span lands inside this test's wall-clock
      // window — seconds off if the skew were not being corrected.
      const int64_t corrected = e.t.ns() - lane.clock_offset_ns;
      EXPECT_GE(corrected, wall0 - 300'000'000);
      EXPECT_LE(corrected, wall1 + 300'000'000);
    }
  }
  EXPECT_EQ(serve_spans, 2u);  // one per agent batch

  const std::string json = to_chrome_trace(rec);
  ASSERT_TRUE(json::lint(json).is_ok()) << json::lint(json).message();
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("agent-a"), std::string::npos);
  EXPECT_NE(json.find("agent-b"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span\":\"" + std::to_string(scatter) + "\""),
            std::string::npos);

  // CI artifact hook: when PERFSIGHT_TRACE_EXPORT names a path, leave the
  // merged multi-process trace there for upload.
  if (const char* path = std::getenv("PERFSIGHT_TRACE_EXPORT")) {
    std::ofstream f(path);
    f << json;
    ASSERT_TRUE(f.good()) << "failed to write " << path;
  }
}

// With no recorder installed, tracing must add zero bytes to the wire
// conversation: trace_id 0 travels on the envelope and the server answers
// with the payload alone.  The differential suite pins byte-identical
// replies; here we pin that no piggyback message follows them.
TEST(FleetTracingTest, DisabledTracingShipsNoTraceBytes) {
  Agent agent("agent-q", 3);
  ScriptedSource s0("q/el0", ChannelKind::kProcFs);
  s0.set_attrs({{attr::kRxPkts, 7.0}});
  ASSERT_TRUE(agent.add_element(&s0).is_ok());
  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  ASSERT_TRUE(server.start().is_ok());

  RemoteAgent remote(server.endpoint());
  ASSERT_TRUE(remote.connect().is_ok());
  BatchResponse b = remote.query_batch({s0.id()}, SimTime::millis(1));
  ASSERT_EQ(b.responses.size(), 1u);
  EXPECT_EQ(b.responses[0].quality, DataQuality::kFresh);

  // The server recorded nothing traceable and shipped nothing: a harvest
  // finds empty rings, and the global recorder gained no lanes.
  ASSERT_TRUE(remote.harvest_trace().is_ok());
  EXPECT_EQ(TraceRecorder::global().num_remote_lanes(), 0u);
  RemoteAgent::TransportStats stats = remote.transport_stats();
  EXPECT_EQ(stats.damaged, 0u);  // no stray bytes misparsed as payload
}

// --- end-to-end I/O deadlines ------------------------------------------------

namespace {

void append_u32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}
void append_u64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

// A structurally valid PSB1 batch of `frames` frames, `payload` bytes each.
// read_batch only walks the length chain, so checksums need not verify.
std::string synthetic_batch(uint32_t frames, uint32_t payload) {
  std::string b;
  append_u32(&b, wire::kMagic);
  append_u32(&b, frames);
  append_u64(&b, 0);  // channel_time_ns
  append_u32(&b, 0);  // unknown_ids
  for (uint32_t f = 0; f < frames; ++f) {
    append_u32(&b, payload);
    append_u64(&b, 0);  // checksum (not read_batch's concern)
    b.append(payload, 'x');
  }
  return b;
}

// A connected loopback socket pair for peer-misbehaviour tests.
struct SocketPair {
  transport::Socket client;
  transport::Socket server;
  static SocketPair make() {
    Result<transport::Listener> l = transport::Listener::listen(
        transport::Endpoint::unix_path(unique_unix_path()));
    EXPECT_TRUE(l.ok());
    transport::Listener listener = std::move(l).take();
    Result<transport::Socket> c =
        transport::connect(listener.bound_endpoint(), WallDuration(1000));
    EXPECT_TRUE(c.ok());
    Result<transport::Socket> a = listener.accept(WallDuration(1000));
    EXPECT_TRUE(a.ok());
    return {std::move(c).take(), std::move(a).take()};
  }
};

}  // namespace

// The regression the length-chain reader is held to: a peer that trickles a
// batch frame-by-frame, each gap shorter than the deadline, must cost the
// reader ONE deadline total — not frames × deadline.  (The old code handed
// every recv_exact a fresh relative budget, so a 16-frame batch dribbled at
// 50ms could hold a 300ms reader for ~1.5s.)
TEST(TransportDeadlineTest, TrickledBatchCostsOneDeadlineNotOnePerFrame) {
  SocketPair pair = SocketPair::make();
  const std::string batch = synthetic_batch(16, 64);

  std::atomic<bool> stop{false};
  std::thread dribbler([&] {
    // ~40-byte chunks every 50ms: every individual recv makes progress well
    // inside a 300ms window, but the whole batch takes ~1.5s.
    for (size_t at = 0; at < batch.size() && !stop; at += 40) {
      if (!pair.server.send_all(std::string_view(batch).substr(
              at, std::min<size_t>(40, batch.size() - at))).is_ok()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  const auto t0 = transport::Clock::now();
  transport::BatchReadResult read =
      transport::read_batch(pair.client, WallDuration(300));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      transport::Clock::now() - t0);
  stop = true;
  dribbler.join();

  EXPECT_FALSE(read.clean());
  EXPECT_EQ(read.status.code(), StatusCode::kDeadlineExceeded);
  // One budget, promptly enforced: far under the ~1.5s the dribble runs
  // (slack above 300ms only for scheduler noise, not per-frame restarts).
  EXPECT_LT(elapsed.count(), 900);
  // The bytes that made it are the caller's to reconcile.
  EXPECT_FALSE(read.bytes.empty());
}

// The complement: a slow-but-inside-budget peer is NOT penalized — the
// whole-batch budget only caps total time, it never fails a stream that
// finishes within it.
TEST(TransportDeadlineTest, SlowPeerInsideTheBudgetStillCompletes) {
  SocketPair pair = SocketPair::make();
  const std::string batch = synthetic_batch(8, 32);

  std::thread dribbler([&] {
    for (size_t at = 0; at < batch.size(); at += 64) {
      ASSERT_TRUE(pair.server.send_all(std::string_view(batch).substr(
          at, std::min<size_t>(64, batch.size() - at))).is_ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  transport::BatchReadResult read =
      transport::read_batch(pair.client, WallDuration(5000));
  dribbler.join();
  EXPECT_TRUE(read.clean());
  EXPECT_EQ(read.bytes, batch);
}

// Sends must be as deadline-correct as reads: a peer that never drains its
// receive buffer stalls send() at EAGAIN, and the old unbounded send_all
// would poll forever.  The deadline form returns kDeadlineExceeded with the
// partial-progress offset in the message.
TEST(TransportDeadlineTest, SendAllHonorsDeadlineAgainstAStalledPeer) {
  SocketPair pair = SocketPair::make();
  // Unix-socket buffers are a few hundred KB: 8MB cannot fit, and the peer
  // never reads, so the send MUST stall.
  const std::string payload(8 * 1024 * 1024, 'p');

  const auto t0 = transport::Clock::now();
  Status st = pair.client.send_all(payload, WallDuration(250));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      transport::Clock::now() - t0);

  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("send deadline"), std::string::npos) << st.message();
  EXPECT_LT(elapsed.count(), 1500);
}

// --- accept-error backoff ----------------------------------------------------

namespace {

// Highest open fd number (so RLIMIT_NOFILE can be clamped to allow exactly
// one more).
int max_open_fd() {
  int top = 2;
  for (int fd = 0; fd < 4096; ++fd) {
    if (::fcntl(fd, F_GETFD) != -1) top = fd;
  }
  return top;
}

struct FdLimitGuard {
  rlimit saved{};
  FdLimitGuard() { getrlimit(RLIMIT_NOFILE, &saved); }
  ~FdLimitGuard() { setrlimit(RLIMIT_NOFILE, &saved); }
};

}  // namespace

// A real accept error (EMFILE from fd exhaustion) must not hot-spin the
// serve thread: it counts on the accept_errors counter/metric, backs the
// listener off, and keeps serving live connections throughout.  When the
// famine lifts, the queued connection completes.
TEST(TransportAcceptBackoffTest, AcceptErrorCountsBacksOffAndRecovers) {
  Agent agent("solo", 1);
  ScriptedSource s0("solo/el0", ChannelKind::kProcFs);
  s0.set_attrs({{attr::kRxPkts, 5.0}});
  ASSERT_TRUE(agent.add_element(&s0).is_ok());

  RemoteAgentServer server(&agent, transport::Endpoint::tcp("127.0.0.1", 0));
  MetricsRegistry metrics;
  server.set_metrics(&metrics);
  ASSERT_TRUE(server.start().is_ok());

  RemoteAgent first(server.endpoint());
  ASSERT_TRUE(first.connect().is_ok());
  EXPECT_EQ(server.accept_errors(), 0u);  // normal operation: clean counter

  Status starved_status = Status::unavailable("never dialed");
  {
    FdLimitGuard guard;
    // Leave room for exactly ONE more fd: the dialer's client socket takes
    // it, so the server-side accept of that connection fails with EMFILE.
    rlimit tight = guard.saved;
    tight.rlim_cur = static_cast<rlim_t>(max_open_fd() + 2);
    ASSERT_EQ(0, setrlimit(RLIMIT_NOFILE, &tight));

    RemoteAgent starved(server.endpoint());
    starved.set_deadline(WallDuration(8000));  // outlives max backoff easily
    std::thread dialer([&] { starved_status = starved.connect(); });

    // The kernel completes the TCP handshake into the backlog regardless,
    // so the listener polls readable and the serve loop hits EMFILE.
    const auto wait_until =
        transport::Clock::now() + std::chrono::seconds(5);
    while (server.accept_errors() == 0 &&
           transport::Clock::now() < wait_until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(server.accept_errors(), 1u);

    // Backed off, not wedged: the established connection still gets served
    // while the listener sits out.
    BatchResponse b = first.query_batch({s0.id()}, SimTime::millis(1));
    ASSERT_EQ(b.responses.size(), 1u);
    EXPECT_EQ(b.responses[0].quality, DataQuality::kFresh);

    // Famine lifts (guard restores the limit); the queued connection must
    // now complete its handshake within the bounded backoff.
    ASSERT_EQ(0, setrlimit(RLIMIT_NOFILE, &guard.saved));
    dialer.join();
    EXPECT_TRUE(starved_status.is_ok()) << starved_status.message();
  }

  const uint64_t errors = server.accept_errors();
  EXPECT_GE(errors, 1u);
  const std::string text = metrics.expose(SimTime());
  EXPECT_NE(text.find("perfsight_transport_accept_errors_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE perfsight_transport_accept_errors_total counter"),
            std::string::npos);
}

// --- TSan churn --------------------------------------------------------------

// Remote scatter queries racing server-side poll sweeps: the adapter's
// connection state, the server's injection slots and the shared Agent all
// see concurrent traffic.  Sources are constant, so the only writes under
// test are the transport's own.
TEST(TransportChurnTest, RemoteQueriesRaceServerSidePolls) {
  TransportRig rig(2, 3, TransportRig::Mode::kTcp);
  ThreadPool pool(4);
  rig.controller_.set_pool(&pool);
  rig.controller_.set_batching(true);
  std::vector<ElementId> ids = rig.elements_;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto got =
          rig.controller_.get_attr_many(rig.tenant_, ids, {attr::kRxPkts});
      EXPECT_EQ(got.size(), ids.size());
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)rig.controller_.get_attr_q(rig.tenant_, ids.back(),
                                       {attr::kDropPkts});
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& a : rig.agents_) (void)a->poll_all(SimTime(), &pool);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();

  RemoteAgent::TransportStats stats = rig.remote(0)->transport_stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.damaged, 0u);
}

}  // namespace
}  // namespace perfsight
