#include "common/units.h"

#include <gtest/gtest.h>

namespace perfsight {
namespace {

using namespace literals;

TEST(UnitsTest, SimTimeConversions) {
  EXPECT_EQ(SimTime::millis(3).ns(), 3000000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::micros(250).ms(), 0.25);
}

TEST(UnitsTest, TimePlusDurationArithmetic) {
  SimTime t = SimTime::millis(10);
  Duration d = Duration::millis(5);
  EXPECT_EQ((t + d).ns(), SimTime::millis(15).ns());
  EXPECT_EQ((t - d).ns(), SimTime::millis(5).ns());
  EXPECT_EQ(((t + d) - t).ns(), d.ns());
}

TEST(UnitsTest, DurationArithmetic) {
  Duration a = Duration::millis(2);
  Duration b = Duration::micros(500);
  EXPECT_EQ((a + b).ns(), 2500000);
  EXPECT_EQ((a - b).ns(), 1500000);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_EQ((a * 0.5).ns(), 1000000);
}

TEST(UnitsTest, DataRateConversions) {
  DataRate r = DataRate::mbps(100);
  EXPECT_DOUBLE_EQ(r.bits_per_sec(), 100e6);
  EXPECT_DOUBLE_EQ(r.bytes_per_sec(), 12.5e6);
  EXPECT_DOUBLE_EQ(DataRate::gbps(10).mbits_per_sec(), 10000);
}

TEST(UnitsTest, BytesInDuration) {
  // 100 Mbps for 1 ms = 12500 bytes.
  EXPECT_EQ(DataRate::mbps(100).bytes_in(Duration::millis(1)), 12500u);
  EXPECT_EQ(DataRate::zero().bytes_in(Duration::seconds(10)), 0u);
}

TEST(UnitsTest, RateOf) {
  // 12500 bytes over 1 ms = 100 Mbps.
  DataRate r = rate_of(12500, Duration::millis(1));
  EXPECT_NEAR(r.mbits_per_sec(), 100.0, 1e-9);
  // Degenerate interval carries no information.
  EXPECT_EQ(rate_of(1000, Duration::nanos(0)).bits_per_sec(), 0.0);
}

TEST(UnitsTest, Literals) {
  EXPECT_DOUBLE_EQ((100_mbps).mbits_per_sec(), 100);
  EXPECT_DOUBLE_EQ((10_gbps).gbits_per_sec(), 10);
  EXPECT_EQ((5_ms).ns(), 5000000);
  EXPECT_EQ((2_s).ns(), 2000000000);
  EXPECT_EQ(4_KiB, 4096u);
}

TEST(UnitsTest, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LT(DataRate::mbps(999), DataRate::gbps(1));
  EXPECT_GT(Duration::seconds(1.0), Duration::millis(999));
}

TEST(UnitsTest, ToStringFormats) {
  EXPECT_EQ(to_string(DataRate::gbps(2.5)), "2.50Gbps");
  EXPECT_EQ(to_string(DataRate::mbps(180)), "180.00Mbps");
  EXPECT_EQ(to_string(DataRate::kbps(64)), "64.00Kbps");
}

}  // namespace
}  // namespace perfsight
