// Virtual switch: rule matching, per-rule statistics (the OVS-style
// counters agents fetch over the control channel), default-drop, and rule
// replacement.
#include "dataplane/vswitch.h"

#include <gtest/gtest.h>

namespace perfsight::dp {
namespace {

PacketBatch batch(uint32_t flow, uint64_t pkts) {
  return PacketBatch{FlowId{flow}, pkts, pkts * 1500};
}

struct CollectPort : PortIn {
  uint64_t pkts = 0;
  void accept(PacketBatch b) override { pkts += b.packets; }
};

TEST(VSwitchTest, ForwardsByRule) {
  VirtualSwitch vs(ElementId{"vs"});
  CollectPort a, b;
  vs.add_rule(FlowId{1}, &a, "to-a");
  vs.add_rule(FlowId{2}, &b, "to-b");
  vs.accept(batch(1, 10));
  vs.accept(batch(2, 20));
  vs.accept(batch(1, 5));
  EXPECT_EQ(a.pkts, 15u);
  EXPECT_EQ(b.pkts, 20u);
  EXPECT_EQ(vs.stats().pkts_in.value(), 35u);
  EXPECT_EQ(vs.stats().pkts_out.value(), 35u);
}

TEST(VSwitchTest, UnmatchedFlowDropped) {
  VirtualSwitch vs(ElementId{"vs"});
  CollectPort a;
  vs.add_rule(FlowId{1}, &a, "to-a");
  vs.accept(batch(99, 7));
  EXPECT_EQ(vs.stats().drop_pkts.value(), 7u);
  EXPECT_EQ(a.pkts, 0u);
}

TEST(VSwitchTest, PerRuleCounters) {
  VirtualSwitch vs(ElementId{"vs"});
  CollectPort a, b;
  vs.add_rule(FlowId{1}, &a, "web");
  vs.add_rule(FlowId{2}, &b, "db");
  vs.accept(batch(1, 10));
  vs.accept(batch(2, 3));
  ASSERT_EQ(vs.rules().size(), 2u);
  EXPECT_EQ(vs.rules()[0].name, "web");
  EXPECT_EQ(vs.rules()[0].pkts, 10u);
  EXPECT_EQ(vs.rules()[0].bytes, 15000u);
  EXPECT_EQ(vs.rules()[1].pkts, 3u);
}

TEST(VSwitchTest, RuleStatsExportedInRecord) {
  VirtualSwitch vs(ElementId{"vs"});
  CollectPort a;
  vs.add_rule(FlowId{1}, &a, "web");
  vs.accept(batch(1, 4));
  StatsRecord r = vs.collect(SimTime{});
  EXPECT_EQ(r.get("rule.web.pkts"), 4.0);
  EXPECT_EQ(r.get("rule.web.bytes"), 6000.0);
}

TEST(VSwitchTest, RuleReplacementRedirects) {
  VirtualSwitch vs(ElementId{"vs"});
  CollectPort old_port, new_port;
  vs.add_rule(FlowId{1}, &old_port, "v1");
  vs.accept(batch(1, 5));
  // Controller re-routes the flow (e.g. scale-out rebalancing).
  vs.add_rule(FlowId{1}, &new_port, "v2");
  vs.accept(batch(1, 5));
  EXPECT_EQ(old_port.pkts, 5u);
  EXPECT_EQ(new_port.pkts, 5u);
  ASSERT_EQ(vs.rules().size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(vs.rules()[0].name, "v2");
}

TEST(VSwitchTest, EmptyBatchIgnored) {
  VirtualSwitch vs(ElementId{"vs"});
  vs.accept(PacketBatch{FlowId{1}, 0, 0});
  EXPECT_EQ(vs.stats().pkts_in.value(), 0u);
}

}  // namespace
}  // namespace perfsight::dp
