// Property/fuzz battery for the wire codec (perfsight/wire.h).
//
// The damage contract under test: decoding arbitrary bytes never crashes
// and never yields a silently wrong record.  Whatever decode_batch returns
// is always a verified prefix of what was encoded; everything lost is
// reported through DecodeStats and, via reconcile(), surfaces as kMissing
// blind spots rather than a silently shrunken batch.  All randomness comes
// from seeded Pcg32 draws — every run is bit-reproducible.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "perfsight/agent.h"
#include "perfsight/wire.h"

namespace perfsight {
namespace {

std::string random_name(Pcg32& rng, size_t max_len) {
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789/_-.";
  std::string s;
  size_t len = rng.next_below(static_cast<uint32_t>(max_len)) + 1;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
  }
  return s;
}

QueryResponse random_response(Pcg32& rng) {
  QueryResponse r;
  r.record.timestamp = SimTime::nanos(static_cast<int64_t>(rng.next_u32()) *
                                      static_cast<int64_t>(rng.next_u32() % 7));
  r.record.element = ElementId{random_name(rng, 24)};
  size_t attrs = rng.next_below(8);
  for (size_t i = 0; i < attrs; ++i) {
    double v = rng.uniform(-1e12, 1e12);
    if (rng.next_below(10) == 0) v = 0.0;
    r.record.attrs.push_back({random_name(rng, 16), v});
  }
  r.response_time = Duration::nanos(rng.next_below(1u << 30));
  switch (rng.next_below(4)) {
    case 0: r.quality = DataQuality::kFresh; break;
    case 1: r.quality = DataQuality::kStale; break;
    case 2: r.quality = DataQuality::kTorn; break;
    default: r.quality = DataQuality::kMissing; break;
  }
  r.attempts = rng.next_below(5);
  r.fail_code = r.quality == DataQuality::kMissing
                    ? StatusCode::kUnavailable
                    : StatusCode::kOk;
  return r;
}

BatchResponse random_batch(Pcg32& rng, size_t max_frames) {
  BatchResponse b;
  size_t n = rng.next_below(static_cast<uint32_t>(max_frames) + 1);
  for (size_t i = 0; i < n; ++i) b.responses.push_back(random_response(rng));
  b.channel_time = Duration::nanos(rng.next_below(1u << 28));
  b.unknown_ids = rng.next_below(4);
  return b;
}

// Canonical byte form of one response — the equality yardstick everywhere
// below (covers every field the codec carries, including NaN-free floats).
// Every response built in this file is encodable, so .value() is safe.
std::string canon(const QueryResponse& r) {
  return wire::encode_frame(r).value();
}

TEST(WireCodecTest, RoundTripIdentity) {
  Pcg32 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    BatchResponse b = random_batch(rng, 12);
    std::string bytes = wire::encode_batch(b).value();

    wire::DecodeStats st;
    Result<BatchResponse> got = wire::decode_batch(bytes, &st);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_TRUE(st.complete());
    EXPECT_EQ(st.frames_expected, b.responses.size());
    EXPECT_EQ(st.frames_ok, b.responses.size());

    const BatchResponse& d = got.value();
    ASSERT_EQ(d.responses.size(), b.responses.size());
    for (size_t i = 0; i < b.responses.size(); ++i) {
      EXPECT_EQ(canon(d.responses[i]), canon(b.responses[i]));
    }
    EXPECT_EQ(d.channel_time.ns(), b.channel_time.ns());
    EXPECT_EQ(d.unknown_ids, b.unknown_ids);
    // Re-encoding the decoded batch reproduces the original bytes exactly.
    EXPECT_EQ(wire::encode_batch(d).value(), bytes);
  }
}

TEST(WireCodecTest, EmptyBatchRoundTrips) {
  BatchResponse b;
  b.channel_time = Duration::micros(7);
  std::string bytes = wire::encode_batch(b).value();
  wire::DecodeStats st;
  Result<BatchResponse> got = wire::decode_batch(bytes, &st);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(st.complete());
  EXPECT_TRUE(got.value().responses.empty());
  EXPECT_EQ(got.value().channel_time.ns(), b.channel_time.ns());
}

TEST(WireCodecTest, TruncationIsDetected) {
  Pcg32 rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    BatchResponse b = random_batch(rng, 6);
    std::string bytes = wire::encode_batch(b).value();
    if (bytes.size() < 2) continue;
    // Every strict prefix: never crash, never fabricate a record.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      wire::DecodeStats st;
      Result<BatchResponse> got =
          wire::decode_batch(std::string_view(bytes.data(), cut), &st);
      if (!got.ok()) continue;  // header didn't survive — fine.
      ASSERT_LE(got.value().responses.size(), b.responses.size());
      for (size_t i = 0; i < got.value().responses.size(); ++i) {
        EXPECT_EQ(canon(got.value().responses[i]), canon(b.responses[i]))
            << "cut=" << cut << ": decoded frame " << i
            << " is not the original — silent corruption";
      }
      if (got.value().responses.size() < b.responses.size()) {
        EXPECT_TRUE(st.truncated || st.corrupt)
            << "cut=" << cut << " lost frames without flagging damage";
        EXPECT_FALSE(st.complete());
      }
    }
  }
}

TEST(WireCodecTest, BitFlipNeverYieldsWrongRecord) {
  Pcg32 rng(4242);
  int damaged_detected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    BatchResponse b = random_batch(rng, 8);
    std::string bytes = wire::encode_batch(b).value();
    if (bytes.empty()) continue;
    std::string mutated = bytes;
    size_t pos = rng.next_below(static_cast<uint32_t>(mutated.size()));
    mutated[pos] = static_cast<char>(
        static_cast<unsigned char>(mutated[pos]) ^
        (1u << rng.next_below(8)));

    wire::DecodeStats st;
    Result<BatchResponse> got = wire::decode_batch(mutated, &st);
    if (!got.ok()) {
      ++damaged_detected;  // header damage is a hard error — acceptable.
      continue;
    }
    // Every returned record must be byte-identical to the corresponding
    // original: a flipped bit may shrink the batch, never rewrite it.
    // (A flip in the header's aux fields can legally alter channel_time /
    // unknown_ids — those are not checksummed records — but frames are.)
    ASSERT_LE(got.value().responses.size(), b.responses.size());
    for (size_t i = 0; i < got.value().responses.size(); ++i) {
      EXPECT_EQ(canon(got.value().responses[i]), canon(b.responses[i]))
          << "trial " << trial << ": bit flip at byte " << pos
          << " produced a silently wrong record";
    }
    if (got.value().responses.size() < b.responses.size()) {
      EXPECT_TRUE(st.truncated || st.corrupt);
      ++damaged_detected;
    }
  }
  // The fuzz loop must actually exercise the damage paths.
  EXPECT_GT(damaged_detected, 50);
}

TEST(WireCodecTest, GarbageDecodesSafely) {
  Pcg32 rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string junk;
    size_t len = rng.next_below(256);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    wire::DecodeStats st;
    Result<BatchResponse> got = wire::decode_batch(junk, &st);
    if (got.ok()) {
      // Random bytes that pass the magic check can only yield frames whose
      // checksums verify — astronomically unlikely, but structurally legal.
      EXPECT_TRUE(st.frames_ok == got.value().responses.size());
    }
    // And the single-frame entry point.
    size_t consumed = 0;
    (void)wire::decode_frame(junk, &consumed);
    EXPECT_LE(consumed, junk.size());
  }
}

TEST(WireCodecTest, DecodeFrameRejectsEveryTruncation) {
  Pcg32 rng(11);
  QueryResponse r = random_response(rng);
  std::string frame = wire::encode_frame(r).value();
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    size_t consumed = 0;
    Result<QueryResponse> got =
        wire::decode_frame(std::string_view(frame.data(), cut), &consumed);
    EXPECT_FALSE(got.ok()) << "truncated frame (cut=" << cut << ") decoded";
  }
  size_t consumed = 0;
  Result<QueryResponse> got = wire::decode_frame(frame, &consumed);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(canon(got.value()), canon(r));
}

TEST(WireCodecTest, ReconcileMapsDamageToMissing) {
  // Build a batch for three known ids, truncate after the first frame, and
  // check the lost ids come back as kMissing with the failure metadata the
  // sequential path would synthesize.
  std::vector<ElementId> ids = {ElementId{"el-a"}, ElementId{"el-b"},
                                ElementId{"el-c"}};
  BatchResponse b;
  for (const ElementId& id : ids) {
    QueryResponse r;
    r.record.element = id;
    r.record.timestamp = SimTime::micros(5);
    r.record.attrs = {{"rxPkts", 42.0}};
    r.response_time = Duration::micros(3);
    b.responses.push_back(r);
  }
  b.channel_time = Duration::micros(9);

  std::string bytes = wire::encode_batch(b).value();
  // Find the end of frame 1: header is fixed-size, then len-prefixed frames.
  size_t header_size = wire::encode_batch(BatchResponse{}).value().size();
  uint32_t payload_len;
  std::memcpy(&payload_len, bytes.data() + header_size, sizeof(payload_len));
  size_t first_frame_end =
      header_size + sizeof(uint32_t) + sizeof(uint64_t) + payload_len;
  ASSERT_LT(first_frame_end, bytes.size());

  wire::DecodeStats st;
  Result<BatchResponse> got = wire::decode_batch(
      std::string_view(bytes.data(), first_frame_end), &st);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().responses.size(), 1u);
  EXPECT_TRUE(st.truncated);
  EXPECT_FALSE(st.complete());

  BatchResponse healed = wire::reconcile(ids, got.value());
  ASSERT_EQ(healed.responses.size(), ids.size());
  EXPECT_EQ(canon(healed.responses[0]), canon(b.responses[0]));
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(healed.responses[i].record.element, ids[i]);
    EXPECT_EQ(healed.responses[i].quality, DataQuality::kMissing);
    EXPECT_EQ(healed.responses[i].fail_code, StatusCode::kUnavailable);
    EXPECT_EQ(healed.responses[i].attempts, 1u);
  }
  EXPECT_EQ(healed.degraded, ids.size() - 1);
  EXPECT_EQ(healed.channel_time.ns(), got.value().channel_time.ns());
}

// Regression (silent-truncation bugfix): encode used to clamp names >64 KiB
// and attr lists >65535 to fit the u16 prefixes — the frame checksummed fine
// but decoded to a record different from what was encoded.  The contract is
// now round-trip identity or an explicit error, never a shrunken record.
TEST(WireCodecTest, OversizeInputIsRejectedNotClamped) {
  // Element name one past the u16 limit.
  {
    QueryResponse r;
    r.record.element = ElementId{std::string(0x10000, 'n')};
    Result<std::string> frame = wire::encode_frame(r);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
  // Attr name past the limit.
  {
    QueryResponse r;
    r.record.element = ElementId{"el"};
    r.record.attrs.push_back({std::string(0x10000, 'a'), 1.0});
    ASSERT_FALSE(wire::encode_frame(r).ok());
  }
  // More attrs than the u16 count can carry.
  {
    QueryResponse r;
    r.record.element = ElementId{"el"};
    r.record.attrs.resize(0x10000, {"a", 1.0});
    ASSERT_FALSE(wire::encode_frame(r).ok());
  }
  // A batch containing one unencodable frame fails whole — never a batch
  // with a silently dropped or shrunken member.
  {
    BatchResponse b;
    QueryResponse ok_r;
    ok_r.record.element = ElementId{"fine"};
    QueryResponse bad;
    bad.record.element = ElementId{std::string(0x10000, 'x')};
    b.responses.push_back(ok_r);
    b.responses.push_back(bad);
    ASSERT_FALSE(wire::encode_batch(b).ok());
  }
  // At the boundary (exactly 0xffff), encode succeeds and round-trips
  // byte-identical.
  {
    QueryResponse r;
    r.record.element = ElementId{std::string(0xffff, 'b')};
    Result<std::string> frame = wire::encode_frame(r);
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    size_t consumed = 0;
    Result<QueryResponse> back = wire::decode_frame(frame.value(), &consumed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(consumed, frame.value().size());
    EXPECT_EQ(back.value().record.element.name.size(), 0xffffu);
    EXPECT_EQ(canon(back.value()), frame.value());
  }
}

// Regression (unsigned-underflow bugfix): the primitive reads computed
// `bytes.size() - at` unsigned, so a caller that over-advanced `at` — the
// streaming transport's length-chain reader is exactly such a caller — saw a
// wrapped-around huge remainder instead of a refusal.
TEST(WireCodecTest, PrimitiveReadsGuardOffsetPastEnd) {
  const std::string bytes = "\x01\x02\x03\x04\x05\x06\x07\x08";
  const size_t offsets[] = {bytes.size() + 1, bytes.size() + 1000,
                            static_cast<size_t>(-1), bytes.size()};
  for (size_t start : offsets) {
    size_t at = start;
    uint8_t v8 = 0;
    uint16_t v16 = 0;
    uint32_t v32 = 0;
    uint64_t v64 = 0;
    EXPECT_FALSE(wire::get_u8(bytes, at, &v8)) << "at=" << start;
    EXPECT_EQ(at, start) << "failed read must not move the cursor";
    EXPECT_FALSE(wire::get_u16(bytes, at, &v16));
    EXPECT_FALSE(wire::get_u32(bytes, at, &v32));
    EXPECT_FALSE(wire::get_u64(bytes, at, &v64));
    EXPECT_EQ(at, start);
  }
  // In-range reads still work and advance.
  size_t at = 0;
  uint32_t v32 = 0;
  ASSERT_TRUE(wire::get_u32(bytes, at, &v32));
  EXPECT_EQ(at, 4u);
  EXPECT_EQ(v32, 0x04030201u);

  // Fuzz the decoder with frames whose length prefixes point past the end
  // in every combination the guard must absorb.
  Pcg32 rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk;
    size_t len = wire::kFramePrefixSize + rng.next_below(64);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    // Force a huge payload_len some of the time.
    if (trial % 3 == 0) {
      uint32_t huge = 0xffffff00u + rng.next_below(256);
      std::memcpy(junk.data(), &huge, sizeof(huge));
    }
    size_t consumed = 0;
    Result<QueryResponse> got = wire::decode_frame(junk, &consumed);
    if (got.ok()) EXPECT_LE(consumed, junk.size());
  }
}

// The PSM1 control-message envelope: round trip + damage refusal for every
// message the transport speaks.
TEST(WireMessageTest, ControlMessagesRoundTrip) {
  wire::HelloMsg hello{"agent-7", {ElementId{"a"}, ElementId{"b/c"}},
                       987654321};
  std::string m = wire::encode_message(wire::MessageKind::kHello,
                                       wire::encode_hello(hello));
  size_t consumed = 0;
  Result<wire::Message> got = wire::decode_message(m, &consumed);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(consumed, m.size());
  EXPECT_EQ(got.value().kind, wire::MessageKind::kHello);
  Result<wire::HelloMsg> h = wire::decode_hello(got.value().body);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().agent_name, "agent-7");
  ASSERT_EQ(h.value().elements.size(), 2u);
  EXPECT_EQ(h.value().elements[1].name, "b/c");
  EXPECT_EQ(h.value().clock_ns, 987654321);

  wire::BatchRequestMsg req{SimTime::millis(12),
                            {ElementId{"x"}, ElementId{"y"}},
                            /*trace_id=*/0xdeadbeefcafef00dULL,
                            /*parent_span=*/42};
  Result<wire::BatchRequestMsg> r = wire::decode_batch_request(
      wire::encode_batch_request(req));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().now.ns(), SimTime::millis(12).ns());
  ASSERT_EQ(r.value().ids.size(), 2u);
  EXPECT_EQ(r.value().trace_id, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(r.value().parent_span, 42u);

  wire::SingleRequestMsg sr{SimTime::micros(3), ElementId{"z"},
                            {"rxPkts", "txPkts"},
                            /*trace_id=*/7, /*parent_span=*/8};
  Result<wire::SingleRequestMsg> sd = wire::decode_single_request(
      wire::encode_single_request(sr));
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd.value().id.name, "z");
  ASSERT_EQ(sd.value().attrs.size(), 2u);
  EXPECT_EQ(sd.value().trace_id, 7u);
  EXPECT_EQ(sd.value().parent_span, 8u);

  wire::ErrorMsg err{StatusCode::kNotFound, "agent a: no element z"};
  Result<wire::ErrorMsg> ed = wire::decode_error(wire::encode_error(err));
  ASSERT_TRUE(ed.ok());
  EXPECT_EQ(ed.value().code, StatusCode::kNotFound);
  EXPECT_EQ(ed.value().message, "agent a: no element z");

  // Damage: every strict prefix of the envelope is refused, and a body bit
  // flip fails the checksum.
  for (size_t cut = 0; cut < m.size(); ++cut) {
    EXPECT_FALSE(wire::decode_message(std::string_view(m.data(), cut)).ok());
  }
  std::string flipped = m;
  flipped.back() = static_cast<char>(flipped.back() ^ 1);
  EXPECT_FALSE(wire::decode_message(flipped).ok());
}

// Fleet extensions ride BEHIND the original fields, and only when present:
// a single-agent hello and an unrouted request encode byte-identical to the
// pre-fleet protocol, so old and new peers interoperate in both directions.
TEST(WireMessageTest, FleetRosterAndRoutingRoundTripBackCompatible) {
  // Multi-agent hello: the roster round-trips, names and element sets.
  wire::HelloMsg fleet;
  fleet.agent_name = "primary";
  fleet.elements = {ElementId{"p/0"}, ElementId{"p/1"}};
  fleet.clock_ns = 1234;
  fleet.roster.push_back({"primary", fleet.elements});
  fleet.roster.push_back({"second", {ElementId{"s/0"}}});
  fleet.roster.push_back({"third", {}});
  Result<wire::HelloMsg> fd = wire::decode_hello(wire::encode_hello(fleet));
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd.value().agent_name, "primary");
  ASSERT_EQ(fd.value().roster.size(), 3u);
  EXPECT_EQ(fd.value().roster[1].name, "second");
  ASSERT_EQ(fd.value().roster[1].elements.size(), 1u);
  EXPECT_EQ(fd.value().roster[1].elements[0].name, "s/0");
  EXPECT_TRUE(fd.value().roster[2].elements.empty());

  // Single-agent hello: the roster section is NOT emitted — the bytes are
  // exactly the pre-roster encoding, and decode yields an empty roster.
  wire::HelloMsg solo;
  solo.agent_name = "primary";
  solo.elements = fleet.elements;
  solo.clock_ns = 1234;
  wire::HelloMsg solo_with_self = solo;
  solo_with_self.roster.push_back({"primary", solo.elements});
  EXPECT_EQ(wire::encode_hello(solo_with_self), wire::encode_hello(solo));
  Result<wire::HelloMsg> sd = wire::decode_hello(wire::encode_hello(solo));
  ASSERT_TRUE(sd.ok());
  EXPECT_TRUE(sd.value().roster.empty());

  // A torn roster section is damage, not an empty roster.
  std::string torn = wire::encode_hello(fleet);
  torn.resize(torn.size() - 3);
  EXPECT_FALSE(wire::decode_hello(torn).ok());

  // Routed batch request: the agent name rides behind the trace context.
  wire::BatchRequestMsg routed{SimTime::millis(5),
                               {ElementId{"x"}},
                               /*trace_id=*/1,
                               /*parent_span=*/2,
                               /*agent=*/"second"};
  Result<wire::BatchRequestMsg> rd =
      wire::decode_batch_request(wire::encode_batch_request(routed));
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.value().agent, "second");

  // Unrouted: not one extra byte versus the old format, and the old decoder
  // semantics (empty agent = primary) fall out of decode.
  wire::BatchRequestMsg unrouted = routed;
  unrouted.agent.clear();
  const std::string old_format = wire::encode_batch_request(unrouted);
  EXPECT_LT(old_format.size(), wire::encode_batch_request(routed).size());
  Result<wire::BatchRequestMsg> od = wire::decode_batch_request(old_format);
  ASSERT_TRUE(od.ok());
  EXPECT_TRUE(od.value().agent.empty());
  // Trailing garbage after the agent field is damage, not ignored.
  EXPECT_FALSE(
      wire::decode_batch_request(wire::encode_batch_request(routed) + "!")
          .ok());

  // Same contract on the single-request envelope.
  wire::SingleRequestMsg srouted{SimTime::micros(3), ElementId{"z"},
                                 {"rxPkts"},
                                 /*trace_id=*/7,
                                 /*parent_span=*/8,
                                 /*agent=*/"third"};
  Result<wire::SingleRequestMsg> srd =
      wire::decode_single_request(wire::encode_single_request(srouted));
  ASSERT_TRUE(srd.ok());
  EXPECT_EQ(srd.value().agent, "third");
  wire::SingleRequestMsg sunrouted = srouted;
  sunrouted.agent.clear();
  Result<wire::SingleRequestMsg> sod =
      wire::decode_single_request(wire::encode_single_request(sunrouted));
  ASSERT_TRUE(sod.ok());
  EXPECT_TRUE(sod.value().agent.empty());
}

// Harvested trace rings cross the wire losslessly — span links, durations,
// value bits and both strings — and the decoder refuses structural damage.
TEST(WireMessageTest, TraceDataRoundTripsAndRefusesDamage) {
  wire::TraceDataMsg td;
  td.process = "agent-7";
  TraceEvent point;
  point.t = SimTime::micros(5);
  point.kind = TraceEventKind::kDrop;
  point.value = 3.5;
  point.element = "mbox0";
  point.detail = "tail drop";
  td.events.push_back(point);
  TraceEvent span;
  span.t = SimTime::micros(9);
  span.kind = TraceEventKind::kSpanServerBatch;
  span.value = 64;
  span.element = "agent-7/serve";
  span.detail = "batch";
  span.span_id = (uint64_t(0x00a7) << 48) | 17;
  span.parent_span = 3;
  span.dur = Duration::micros(250);
  td.events.push_back(span);

  const std::string body = wire::encode_trace_data(td);
  Result<wire::TraceDataMsg> got = wire::decode_trace_data(body);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().process, "agent-7");
  ASSERT_EQ(got.value().events.size(), 2u);
  const TraceEvent& p = got.value().events[0];
  EXPECT_EQ(p.t.ns(), SimTime::micros(5).ns());
  EXPECT_EQ(p.kind, TraceEventKind::kDrop);
  EXPECT_EQ(p.value, 3.5);
  EXPECT_EQ(p.element, "mbox0");
  EXPECT_EQ(p.detail, "tail drop");
  EXPECT_FALSE(p.is_span());
  const TraceEvent& s = got.value().events[1];
  EXPECT_EQ(s.span_id, span.span_id);
  EXPECT_EQ(s.parent_span, 3u);
  EXPECT_EQ(s.dur.ns(), Duration::micros(250).ns());
  EXPECT_TRUE(s.is_span());

  // An empty harvest is legal (nothing recorded since the last drain).
  wire::TraceDataMsg empty;
  empty.process = "agent-7";
  Result<wire::TraceDataMsg> e =
      wire::decode_trace_data(wire::encode_trace_data(empty));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().events.empty());

  // Damage: every strict prefix is refused, trailing bytes are refused, an
  // out-of-range event kind is refused, and a corrupted event count cannot
  // force a huge reserve.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(
        wire::decode_trace_data(std::string_view(body.data(), cut)).ok());
  }
  EXPECT_FALSE(wire::decode_trace_data(body + "x").ok());
  std::string bad_kind = body;
  // kind byte of event 0 sits after process string + u32 count + i64 t.
  const size_t kind_at = 2 + td.process.size() + 4 + 8;
  bad_kind[kind_at] = static_cast<char>(0xee);
  EXPECT_FALSE(wire::decode_trace_data(bad_kind).ok());
  std::string bad_count = body;
  const uint32_t huge = 0xfffffff0u;
  std::memcpy(bad_count.data() + 2 + td.process.size(), &huge, sizeof(huge));
  EXPECT_FALSE(wire::decode_trace_data(bad_count).ok());

  // And the envelope accepts the two new kinds.
  for (wire::MessageKind k : {wire::MessageKind::kTraceHarvest,
                              wire::MessageKind::kTraceData}) {
    Result<wire::Message> menv =
        wire::decode_message(wire::encode_message(k, body));
    ASSERT_TRUE(menv.ok());
    EXPECT_EQ(menv.value().kind, k);
  }
}

TEST(WireCodecTest, ChecksumIsFnv1a64) {
  // Pin the hash so the wire format can't silently change: standard FNV-1a
  // test vectors.
  EXPECT_EQ(wire::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(wire::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(wire::fnv1a64("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(wire::kMagic, 0x31425350u);
}

// --- kSubscribe / kStreamData codec ------------------------------------------

wire::StreamDataMsg random_stream_frame(Pcg32& rng, uint64_t seq) {
  wire::StreamDataMsg m;
  m.agent = random_name(rng, 12);
  m.seq = seq;
  m.window_start = SimTime::nanos(static_cast<int64_t>(rng.next_u32()) * 100);
  m.channel_time = Duration::nanos(rng.next_below(1u << 26));
  size_t n = rng.next_below(6);
  for (size_t i = 0; i < n; ++i) m.responses.push_back(random_response(rng));
  return m;
}

// The next window of the same stream: same elements, counters advanced by
// small integral deltas — the shape the delta coder is built for.
wire::StreamDataMsg next_window(Pcg32& rng, const wire::StreamDataMsg& prev) {
  wire::StreamDataMsg m = prev;
  m.seq = prev.seq + 1;
  m.window_start = prev.window_start + Duration::millis(100);
  for (QueryResponse& r : m.responses) {
    r.record.timestamp = m.window_start;
    for (Attr& a : r.record.attrs) {
      a.value += static_cast<double>(rng.next_below(100000));
    }
  }
  return m;
}

// Canonical byte form of one stream frame: its all-absolute encoding.  Two
// frames are equal iff their snapshots are byte-equal — covers agent, seq,
// window, channel time, and every record bit.
std::string canon_stream(const wire::StreamDataMsg& m) {
  return wire::encode_stream_data(m, nullptr).value();
}

TEST(StreamCodecTest, SubscribeRoundTrips) {
  Pcg32 rng(808);
  for (int trial = 0; trial < 50; ++trial) {
    wire::SubscribeMsg s;
    s.agent = trial % 5 == 0 ? "" : random_name(rng, 20);
    s.from_seq = (static_cast<uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
    s.window_ns = static_cast<int64_t>(rng.next_u32());
    Result<wire::SubscribeMsg> got =
        wire::decode_subscribe(wire::encode_subscribe(s));
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().agent, s.agent);
    EXPECT_EQ(got.value().from_seq, s.from_seq);
    EXPECT_EQ(got.value().window_ns, s.window_ns);
  }
}

TEST(StreamCodecTest, RoundTripIdentitySnapshotAndDeltaChains) {
  Pcg32 rng(6060);
  for (int trial = 0; trial < 60; ++trial) {
    // Snapshot (no base) round-trips.
    wire::StreamDataMsg f1 = random_stream_frame(rng, 1);
    Result<std::string> b1 = wire::encode_stream_data(f1, nullptr);
    ASSERT_TRUE(b1.ok()) << b1.status().message();
    Result<wire::StreamDataMsg> d1 = wire::decode_stream_data(b1.value(), nullptr);
    ASSERT_TRUE(d1.ok()) << d1.status().message();
    EXPECT_EQ(canon_stream(d1.value()), canon_stream(f1));

    // A chain of delta-coded windows round-trips frame by frame, and the
    // delta form really is smaller than the snapshot form for counter-like
    // updates (that is the point of push mode).
    wire::StreamDataMsg prev = f1;
    size_t delta_bytes = 0, snapshot_bytes = 0;
    for (int k = 0; k < 4; ++k) {
      wire::StreamDataMsg cur = next_window(rng, prev);
      Result<std::string> body = wire::encode_stream_data(cur, &prev);
      ASSERT_TRUE(body.ok()) << body.status().message();
      Result<wire::StreamDataMsg> got =
          wire::decode_stream_data(body.value(), &prev);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(canon_stream(got.value()), canon_stream(cur))
          << "trial " << trial << " chain step " << k;
      delta_bytes += body.value().size();
      snapshot_bytes += canon_stream(cur).size();
      prev = cur;
    }
    if (!f1.responses.empty()) EXPECT_LE(delta_bytes, snapshot_bytes);
  }
}

TEST(StreamCodecTest, EveryPrefixTruncationNeverSilentlyWrong) {
  Pcg32 rng(71);
  for (int trial = 0; trial < 25; ++trial) {
    wire::StreamDataMsg f1 = random_stream_frame(rng, 1);
    wire::StreamDataMsg f2 = next_window(rng, f1);
    for (const bool delta : {false, true}) {
      const wire::StreamDataMsg* prev = delta ? &f1 : nullptr;
      const wire::StreamDataMsg& m = delta ? f2 : f1;
      std::string bytes = wire::encode_stream_data(m, prev).value();
      for (size_t cut = 0; cut < bytes.size(); ++cut) {
        Result<wire::StreamDataMsg> got = wire::decode_stream_data(
            std::string_view(bytes.data(), cut), prev);
        // A strict prefix must never decode to anything but the original
        // (and with a fixed record count in the header it should fail).
        if (got.ok()) {
          EXPECT_EQ(canon_stream(got.value()), canon_stream(m))
              << "cut=" << cut << " fabricated a frame";
        }
      }
    }
  }
}

TEST(StreamCodecTest, BitFlipOnEnvelopedFrameNeverSilentlyWrong) {
  Pcg32 rng(4343);
  int damaged_detected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    wire::StreamDataMsg f1 = random_stream_frame(rng, 1);
    wire::StreamDataMsg f2 = next_window(rng, f1);
    const bool delta = trial % 2 != 0;
    const wire::StreamDataMsg& sent = delta ? f2 : f1;
    std::string body =
        wire::encode_stream_data(sent, delta ? &f1 : nullptr).value();
    std::string msg = wire::encode_message(wire::MessageKind::kStreamData, body);
    size_t pos = rng.next_below(static_cast<uint32_t>(msg.size()));
    msg[pos] = static_cast<char>(static_cast<unsigned char>(msg[pos]) ^
                                 (1u << rng.next_below(8)));

    Result<wire::Message> env = wire::decode_message(msg);
    if (!env.ok() || env.value().kind != wire::MessageKind::kStreamData) {
      ++damaged_detected;  // checksum/framing caught it (or re-kinded it)
      continue;
    }
    Result<wire::StreamDataMsg> got =
        wire::decode_stream_data(env.value().body, delta ? &f1 : nullptr);
    if (!got.ok()) {
      ++damaged_detected;
      continue;
    }
    // The envelope checksum passed and the frame decoded: it must BE the
    // original, bit for bit.
    EXPECT_EQ(canon_stream(got.value()), canon_stream(sent))
        << "trial " << trial << ": flip at byte " << pos
        << " survived the checksum AND the frame decode";
  }
  EXPECT_GT(damaged_detected, 250);
}

TEST(StreamCodecTest, DeltaWithoutBaseIsStructuralDamage) {
  // Construct a frame guaranteed to carry delta-mode attrs (integral
  // counters advance by an exactly-representable step).
  wire::StreamDataMsg f1;
  f1.agent = "a0";
  f1.seq = 1;
  f1.window_start = SimTime::millis(100);
  QueryResponse r;
  r.record.timestamp = f1.window_start;
  r.record.element = ElementId{"m0/pnic"};
  r.record.attrs = {{"rxPkts", 12000.0}, {"dropPkts", 800.0}};
  f1.responses.push_back(r);
  wire::StreamDataMsg f2 = f1;
  f2.seq = 2;
  f2.window_start = SimTime::millis(200);
  f2.responses[0].record.timestamp = f2.window_start;
  f2.responses[0].record.attrs = {{"rxPkts", 24000.0}, {"dropPkts", 1600.0}};

  std::string delta_body = wire::encode_stream_data(f2, &f1).value();
  // With the base, the delta frame reconstructs exactly.
  Result<wire::StreamDataMsg> with_base =
      wire::decode_stream_data(delta_body, &f1);
  ASSERT_TRUE(with_base.ok());
  EXPECT_EQ(canon_stream(with_base.value()), canon_stream(f2));
  // The delta form must actually be in play for this test to mean anything.
  ASSERT_LT(delta_body.size(), canon_stream(f2).size());

  // Without the base the same bytes are structural damage, never a guess.
  Result<wire::StreamDataMsg> without_base =
      wire::decode_stream_data(delta_body, nullptr);
  ASSERT_FALSE(without_base.ok());
  EXPECT_NE(without_base.status().message().find("delta without base"),
            std::string::npos)
      << without_base.status().message();
}

// --- kIntReport codec --------------------------------------------------------

wire::IntReportMsg random_int_report(Pcg32& rng) {
  wire::IntReportMsg m;
  m.agent = rng.next_below(6) == 0 ? "" : random_name(rng, 20);
  m.tag = (static_cast<uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  m.start = SimTime::nanos(static_cast<int64_t>(rng.next_u32()));
  m.end = m.start + Duration::nanos(rng.next_below(1u << 20));
  m.dropped = rng.next_below(4) == 0;
  size_t hops = rng.next_below(9);
  for (size_t i = 0; i < hops; ++i) {
    wire::IntHopWire h;
    h.element = ElementId{random_name(rng, 24)};
    h.queue_pkts = rng.next_below(1u << 16);
    h.io_time_ns = static_cast<int64_t>(rng.next_below(1u << 24));
    h.flags = (m.dropped && i + 1 == hops) ? 1 : 0;
    m.hops.push_back(h);
  }
  return m;
}

std::string canon_int(const wire::IntReportMsg& m) {
  return wire::encode_int_report(m).value();
}

TEST(IntReportCodecTest, RoundTripIdentity) {
  Pcg32 rng(2727);
  for (int trial = 0; trial < 100; ++trial) {
    wire::IntReportMsg m = random_int_report(rng);
    Result<std::string> body = wire::encode_int_report(m);
    ASSERT_TRUE(body.ok()) << body.status().message();
    Result<wire::IntReportMsg> got = wire::decode_int_report(body.value());
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().agent, m.agent);
    EXPECT_EQ(got.value().tag, m.tag);
    EXPECT_EQ(got.value().start, m.start);
    EXPECT_EQ(got.value().end, m.end);
    EXPECT_EQ(got.value().dropped, m.dropped);
    ASSERT_EQ(got.value().hops.size(), m.hops.size());
    EXPECT_EQ(canon_int(got.value()), canon_int(m)) << "trial " << trial;
  }
}

TEST(IntReportCodecTest, EveryPrefixTruncationFails) {
  Pcg32 rng(929);
  for (int trial = 0; trial < 25; ++trial) {
    wire::IntReportMsg m = random_int_report(rng);
    std::string bytes = wire::encode_int_report(m).value();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      Result<wire::IntReportMsg> got =
          wire::decode_int_report(std::string_view(bytes.data(), cut));
      // The layout is fully length-pinned (string lengths + hop count), so
      // no strict prefix can be a valid report.
      EXPECT_FALSE(got.ok()) << "trial " << trial << " cut=" << cut
                             << " decoded a truncated report";
    }
    // Trailing garbage is damage too.
    Result<wire::IntReportMsg> longer = wire::decode_int_report(bytes + "x");
    EXPECT_FALSE(longer.ok());
  }
}

TEST(IntReportCodecTest, BitFlipOnEnvelopedReportNeverSilentlyWrong) {
  Pcg32 rng(1717);
  int damaged_detected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    wire::IntReportMsg sent = random_int_report(rng);
    std::string body = wire::encode_int_report(sent).value();
    std::string msg =
        wire::encode_message(wire::MessageKind::kIntReport, body);
    size_t pos = rng.next_below(static_cast<uint32_t>(msg.size()));
    msg[pos] = static_cast<char>(static_cast<unsigned char>(msg[pos]) ^
                                 (1u << rng.next_below(8)));

    Result<wire::Message> env = wire::decode_message(msg);
    if (!env.ok() || env.value().kind != wire::MessageKind::kIntReport) {
      ++damaged_detected;
      continue;
    }
    Result<wire::IntReportMsg> got =
        wire::decode_int_report(env.value().body);
    if (!got.ok()) {
      ++damaged_detected;
      continue;
    }
    EXPECT_EQ(canon_int(got.value()), canon_int(sent))
        << "trial " << trial << ": flip at byte " << pos
        << " survived the checksum AND the report decode";
  }
  EXPECT_GT(damaged_detected, 250);
}

TEST(IntReportCodecTest, ReservedFlagBitsAreStructuralDamage) {
  wire::IntReportMsg m;
  m.agent = "a0/int";
  m.tag = 7;
  m.start = SimTime::millis(100);
  m.end = SimTime::millis(101);
  wire::IntHopWire h;
  h.element = ElementId{"m0/pnic"};
  h.queue_pkts = 12;
  h.io_time_ns = 500;
  m.hops.push_back(h);
  std::string bytes = wire::encode_int_report(m).value();
  // Message flags byte sits after agent (2 + len) + tag(8) + times(16).
  const size_t msg_flags_at = 2 + m.agent.size() + 8 + 16;
  for (int bit = 1; bit < 8; ++bit) {
    std::string bad = bytes;
    bad[msg_flags_at] =
        static_cast<char>(static_cast<unsigned char>(bad[msg_flags_at]) |
                          (1u << bit));
    EXPECT_FALSE(wire::decode_int_report(bad).ok()) << "msg bit " << bit;
  }
  // Hop flags is the last byte of the body.
  for (int bit = 1; bit < 8; ++bit) {
    std::string bad = bytes;
    bad.back() = static_cast<char>(
        static_cast<unsigned char>(bad.back()) | (1u << bit));
    EXPECT_FALSE(wire::decode_int_report(bad).ok()) << "hop bit " << bit;
  }
  // Oversize inputs are rejected, never clamped.
  wire::IntReportMsg big = m;
  big.agent.assign(70000, 'x');
  EXPECT_FALSE(wire::encode_int_report(big).ok());
}

TEST(StreamCodecTest, PeekPinsSeqAgentWindowAndCount) {
  Pcg32 rng(512);
  wire::StreamDataMsg prev;
  bool has_prev = false;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    wire::StreamDataMsg m =
        has_prev ? next_window(rng, prev) : random_stream_frame(rng, 1);
    std::string body =
        wire::encode_stream_data(m, has_prev ? &prev : nullptr).value();
    Result<wire::StreamFrameInfo> info = wire::peek_stream_data(body);
    ASSERT_TRUE(info.ok()) << info.status().message();
    EXPECT_EQ(info.value().agent, m.agent);
    EXPECT_EQ(info.value().seq, m.seq);
    EXPECT_EQ(info.value().window_start, m.window_start);
    EXPECT_EQ(info.value().record_count, m.responses.size());
    prev = m;
    has_prev = true;
  }
  // Peek on garbage never crashes and never invents a frame.
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk;
    size_t len = rng.next_below(64);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    (void)wire::peek_stream_data(junk);  // must not crash
  }
}

}  // namespace
}  // namespace perfsight
