// The perf-trajectory regression gate (ROADMAP: "BENCH_*.json emission ...
// so the performance trajectory finally exists as data").
//
// Usage:  bench_gate <baseline.json> <BENCH_a.json> [<BENCH_b.json> ...]
//
// Each BENCH_<name>.json (written by bench::Reporter) carries a `gate`
// section of deterministic metrics.  The baseline holds one object per
// bench with the expected values.  A metric fails when it deviates from
// its baseline by more than ±10% (exact-zero baselines require exact
// zero).  Metrics present in a report but absent from the baseline are
// reported as NEW and do not fail the gate — the baseline is updated by
// pasting the printed values; metrics in the baseline but missing from
// every report DO fail, so a silently-vanished bench cannot pass.
//
// Exit code: 0 all gates pass, 1 any regression / missing metric, 2 usage
// or unreadable input.  No JSON library: the reports are our own flat
// format, scanned with the same json::find_numbers the tests use.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "perfsight/json_export.h"

namespace {

constexpr double kTolerance = 0.10;  // ±10%

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Extracts "key": <number> pairs from the `section` object of a flat
// Reporter/baseline JSON document.
std::map<std::string, double> section_metrics(const std::string& text,
                                              const std::string& section) {
  std::map<std::string, double> out;
  size_t at = text.find("\"" + section + "\"");
  if (at == std::string::npos) return out;
  at = text.find('{', at);
  if (at == std::string::npos) return out;
  const size_t end = text.find('}', at);
  if (end == std::string::npos) return out;
  std::string body = text.substr(at, end - at + 1);
  // Keys are bare metric names; walk "name": value pairs.
  size_t p = 0;
  while ((p = body.find('"', p)) != std::string::npos) {
    const size_t q = body.find('"', p + 1);
    if (q == std::string::npos) break;
    const std::string key = body.substr(p + 1, q - p - 1);
    p = q + 1;
    const std::vector<double> v = perfsight::json::find_numbers(body, key);
    if (!v.empty()) out[key] = v.front();
  }
  return out;
}

std::string bench_name(const std::string& text) {
  const std::string needle = "\"bench\":\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  const size_t end = text.find('"', at + needle.size());
  if (end == std::string::npos) return {};
  return text.substr(at + needle.size(), end - at - needle.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_gate <baseline.json> <BENCH_*.json>...\n");
    return 2;
  }
  const std::string baseline_text = read_file(argv[1]);
  if (baseline_text.empty()) {
    std::fprintf(stderr, "bench_gate: cannot read baseline %s\n", argv[1]);
    return 2;
  }

  bool fail = false;
  std::map<std::string, bool> benches_seen;

  for (int i = 2; i < argc; ++i) {
    const std::string text = read_file(argv[i]);
    if (text.empty()) {
      std::fprintf(stderr, "bench_gate: cannot read report %s\n", argv[i]);
      return 2;
    }
    const std::string name = bench_name(text);
    if (name.empty()) {
      std::fprintf(stderr, "bench_gate: %s has no \"bench\" field\n",
                   argv[i]);
      return 2;
    }
    benches_seen[name] = true;

    // The baseline nests per-bench objects: {"<name>": {"metric": v, ...}}.
    const std::map<std::string, double> expected =
        section_metrics(baseline_text, name);
    const std::map<std::string, double> got = section_metrics(text, "gate");

    for (const auto& [metric, value] : got) {
      auto it = expected.find(metric);
      if (it == expected.end()) {
        std::printf("GATE NEW   %s/%s = %.6g (not in baseline)\n",
                    name.c_str(), metric.c_str(), value);
        continue;
      }
      const double base = it->second;
      const bool ok = base == 0.0
                          ? value == 0.0
                          : std::abs(value - base) <= kTolerance *
                                std::abs(base);
      std::printf("GATE %s %s/%s = %.6g (baseline %.6g, %+.2f%%)\n",
                  ok ? "PASS " : "FAIL ", name.c_str(), metric.c_str(),
                  value, base,
                  base != 0.0 ? (value - base) / base * 100.0 : 0.0);
      if (!ok) fail = true;
    }
    for (const auto& [metric, base] : expected) {
      if (got.count(metric) == 0) {
        std::printf("GATE FAIL  %s/%s missing from report (baseline %.6g)\n",
                    name.c_str(), metric.c_str(), base);
        fail = true;
      }
    }
  }

  return fail ? 1 : 0;
}
